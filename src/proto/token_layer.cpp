#include "proto/token_layer.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "util/log.hpp"
#include "util/seq_tracker.hpp"

namespace msw {
namespace {

enum class Type : std::uint8_t {
  kData = 0,
  kToken = 1,
  kTokenAck = 2,
  kNack = 3,
  kPass = 4,
};

constexpr std::size_t kMaxNackBatch = 64;

}  // namespace

void TokenLayer::start() {
  tr_ = &ctx().tracer();
  n_visit_ = tr_->intern("token.visit");
  n_gap_nack_ = tr_->intern("token.gap_nack");
  if (MetricsRegistry* reg = ctx().metrics()) {
    reg->attach_counter("token.visits", &stats_.token_visits);
    reg->attach_counter("token.retransmissions", &stats_.token_retransmissions);
    reg->attach_counter("token.gap_nacks_sent", &stats_.gap_nacks_sent);
    reg->attach_counter("token.history_retransmissions", &stats_.history_retransmissions);
    reg->attach_counter("token.duplicates_dropped", &stats_.duplicates_dropped);
  }
  ctx().set_timer(cfg_.nack_interval, [this] { send_gap_nacks(); });
  if (ctx().self_index() == 0) {
    // The first member originates the token. Processing it immediately
    // (serial 1) starts the perpetual rotation.
    Token t;
    t.serial = 1;
    t.delivered.assign(ctx().member_count(), 0);
    last_serial_seen_ = 1;
    ++stats_.token_visits;
    process_token(std::move(t));
  }
}

void TokenLayer::down(Message m) {
  if (m.is_p2p()) {
    m.push_header([](Writer& w) { w.u8(static_cast<std::uint8_t>(Type::kPass)); });
    ctx().send_down(std::move(m));
    return;
  }
  // Group messages wait for the token.
  queued_.push_back(std::move(m));
}

void TokenLayer::up(Message m) {
  Type type{};
  std::uint64_t gseq = 0;
  std::uint64_t serial = 0;
  Token token;
  std::vector<std::uint64_t> nack_gseqs;
  m.pop_header([&](Reader& r) {
    type = static_cast<Type>(r.u8());
    switch (type) {
      case Type::kData:
        gseq = r.u64();
        break;
      case Type::kToken: {
        token.serial = r.u64();
        token.next_gseq = r.u64();
        const std::uint32_t n = r.u32();
        token.delivered.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) token.delivered.push_back(r.u64());
        break;
      }
      case Type::kTokenAck:
        serial = r.u64();
        break;
      case Type::kNack: {
        const std::uint32_t count = r.u32();
        nack_gseqs.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) nack_gseqs.push_back(r.u64());
        break;
      }
      case Type::kPass:
        break;
    }
  });
  switch (type) {
    case Type::kData:
      on_data(gseq, std::move(m));
      break;
    case Type::kToken:
      on_token(std::move(token), m.wire_src);
      break;
    case Type::kTokenAck:
      on_token_ack(serial);
      break;
    case Type::kNack:
      on_nack(m.wire_src, nack_gseqs);
      break;
    case Type::kPass:
      ctx().deliver_up(std::move(m));
      break;
  }
}

void TokenLayer::on_token(Token t, NodeId from) {
  // Always ack, even for duplicates: the predecessor keeps retransmitting
  // until it hears the ack.
  {
    Message ack = Message::p2p(from, {});
    const std::uint64_t serial = t.serial;
    ack.push_header([&](Writer& w) {
      w.u8(static_cast<std::uint8_t>(Type::kTokenAck));
      w.u64(serial);
    });
    ctx().send_down(std::move(ack));
  }
  if (t.serial <= last_serial_seen_) {
    ++stats_.duplicates_dropped;
    return;
  }
  last_serial_seen_ = t.serial;
  last_token_sender_ = from;
  ++stats_.token_visits;
  tr_->instant(n_visit_, TelemetryTrack::kData, queued_.size());
  process_token(std::move(t));
}

void TokenLayer::process_token(Token t) {
  if (t.delivered.size() != ctx().member_count()) {
    t.delivered.assign(ctx().member_count(), 0);  // defensive: malformed token
  }
  // The token's counter is the global-sequence horizon: even if the last
  // data multicast to us was lost, the next token visit exposes the gap.
  highest_gseq_seen_ = std::max(highest_gseq_seen_, t.next_gseq);
  ctx().consume_cpu(cfg_.token_process_cost);
  // Record our delivery progress for the stability watermark.
  t.delivered[ctx().self_index()] = next_deliver_;
  // Multicast queued messages, consuming global sequence numbers.
  std::size_t sent = 0;
  while (!queued_.empty() && sent < cfg_.batch_limit) {
    Message m = std::move(queued_.front());
    queued_.erase(queued_.begin());
    const std::uint64_t gseq = t.next_gseq++;
    m.push_header([&](Writer& w) {
      w.u8(static_cast<std::uint8_t>(Type::kData));
      w.u64(gseq);
    });
    history_.emplace(gseq, m.data);
    ctx().send_down(std::move(m));
    ++sent;
  }
  // Garbage-collect our history below the group-wide stability watermark.
  const std::uint64_t watermark =
      *std::min_element(t.delivered.begin(), t.delivered.end());
  while (!history_.empty() && history_.begin()->first < watermark) {
    history_.erase(history_.begin());
  }
  if (cfg_.idle_hold > 0) {
    ctx().set_timer(cfg_.idle_hold, [this, t = std::move(t)]() mutable {
      forward_token(std::move(t));
    });
  } else {
    forward_token(std::move(t));
  }
}

Payload TokenLayer::encode_token(const Token& t) const {
  Message m = Message::group({});
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(Type::kToken));
    w.u64(t.serial);
    w.u64(t.next_gseq);
    w.u32(static_cast<std::uint32_t>(t.delivered.size()));
    for (std::uint64_t d : t.delivered) w.u64(d);
  });
  return std::move(m.data);
}

void TokenLayer::forward_token(Token t) {
  ++t.serial;
  outstanding_serial_ = t.serial;
  outstanding_bytes_ = encode_token(t);
  const NodeId succ = ctx().ring_successor();
  ctx().send_down(Message::p2p(succ, outstanding_bytes_));
  arm_token_retransmit(t.serial);
}

void TokenLayer::arm_token_retransmit(std::uint64_t serial) {
  ctx().set_timer(cfg_.token_rto, [this, serial] {
    if (outstanding_serial_ != serial) return;  // acked meanwhile
    ++stats_.token_retransmissions;
    ctx().send_down(Message::p2p(ctx().ring_successor(), outstanding_bytes_));
    arm_token_retransmit(serial);
  });
}

void TokenLayer::on_token_ack(std::uint64_t serial) {
  if (serial == outstanding_serial_) {
    outstanding_serial_ = 0;
    outstanding_bytes_.clear();
  }
}

void TokenLayer::on_data(std::uint64_t gseq, Message m) {
  highest_gseq_seen_ = std::max(highest_gseq_seen_, gseq + 1);
  if (gseq < next_deliver_ || reorder_.count(gseq) > 0) {
    ++stats_.duplicates_dropped;
    return;
  }
  reorder_.emplace(gseq, std::move(m));
  for (auto it = reorder_.find(next_deliver_); it != reorder_.end();
       it = reorder_.find(next_deliver_)) {
    Message ready = std::move(it->second);
    reorder_.erase(it);
    ++next_deliver_;
    ctx().deliver_up(std::move(ready));
  }
}

void TokenLayer::on_nack(NodeId requester, const std::vector<std::uint64_t>& gseqs) {
  for (std::uint64_t gseq : gseqs) {
    auto it = history_.find(gseq);
    if (it == history_.end()) continue;  // not ours (or already collected)
    ++stats_.history_retransmissions;
    ctx().send_down(Message::p2p(requester, it->second));
  }
}

void TokenLayer::send_gap_nacks() {
  if (next_deliver_ < highest_gseq_seen_) {
    // Gap enumeration walks the reorder buffer's keys — O(held + ranges),
    // not O(highest_gseq_seen_ - next_deliver_).
    std::vector<std::uint64_t> missing;
    for (const SeqRange& r :
         missing_ranges_in(reorder_, next_deliver_, highest_gseq_seen_, kMaxNackBatch)) {
      for (std::uint64_t g = r.begin; g < r.end; ++g) missing.push_back(g);
    }
    if (!missing.empty()) {
      ++stats_.gap_nacks_sent;
      tr_->instant(n_gap_nack_, TelemetryTrack::kData, missing.size());
      Message m = Message::group({});
      m.push_header([&](Writer& w) {
        w.u8(static_cast<std::uint8_t>(Type::kNack));
        w.u32(static_cast<std::uint32_t>(missing.size()));
        for (std::uint64_t g : missing) w.u64(g);
      });
      ctx().send_down(std::move(m));
    }
  }
  ctx().set_timer(cfg_.nack_interval, [this] { send_gap_nacks(); });
}

}  // namespace msw
