// Prioritized Delivery (Table 1): the master process always delivers a
// message before anyone else.
//
// The first group member is the master. Messages flow to everyone through
// the layers below, but a non-master holds each message until it hears the
// master's RELEASE for it; the master delivers immediately and multicasts
// the RELEASE. Delivery order at non-masters therefore trails the master's
// delivery order.
//
// The paper singles this property out as not Asynchronous — it constrains
// the relative order of events at *different* processes — and therefore
// not preserved by the switching protocol (section 5.2).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>

#include "stack/layer.hpp"

namespace msw {

class PriorityLayer : public Layer {
 public:
  std::string_view name() const override { return "priority"; }

  void down(Message m) override;
  void up(Message m) override;

  bool is_master() const { return ctx().self() == ctx().members().front(); }

  /// Messages held waiting for the master's release.
  std::size_t held() const { return held_.size(); }

 private:
  using Key = std::pair<std::uint32_t, std::uint64_t>;  // (origin, pseq)

  void on_data(Key key, Message m);
  void on_release(Key key);

  std::uint64_t next_pseq_ = 0;
  std::set<Key> released_;
  std::map<Key, Message> held_;
  std::set<Key> delivered_;  // suppress re-delivery on duplicate release+data
};

}  // namespace msw
