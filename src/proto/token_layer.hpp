// Token-ring total order (the rotating-token scheme of Chang & Maxemchuk,
// the second mechanism of the paper's section 7).
//
// A token circulates on the logical ring defined by the member list. A
// process wishing to multicast must wait for the token; on receipt it
// assigns consecutive global sequence numbers from the token's counter to
// its queued messages, multicasts them, and passes the token on. Latency
// under low load is therefore about half a ring rotation — high compared
// to the sequencer — but there is no central bottleneck, so latency stays
// nearly flat as the number of active senders grows. That flat curve is
// the second series of Figure 2.
//
// Self-contained under a fair-lossy network:
//   - token handoff is acknowledged and retransmitted (the token carries a
//     serial number, so duplicates are recognized and re-acked);
//   - receivers multicast NACKs for global-sequence gaps; whichever member
//     holds the missing message in its send history retransmits it
//     point-to-point;
//   - the token carries a per-member delivered watermark; its minimum is a
//     stability bound below which send histories are garbage-collected.
//
// Point-to-point traffic of layers above passes through unmodified.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "stack/layer.hpp"

namespace msw {

struct TokenConfig {
  /// Token handoff retransmission interval.
  Duration token_rto = 15 * kMillisecond;
  /// Receiver-side gap NACK interval.
  Duration nack_interval = 10 * kMillisecond;
  /// Extra delay a member holds the token even when idle (0 = pass as soon
  /// as processed; the per-hop network latency already paces the ring).
  Duration idle_hold = 0;
  /// Maximum messages multicast per token visit.
  std::size_t batch_limit = 64;
  /// CPU time spent processing one token visit (updating the stability
  /// vector, history garbage collection) beyond per-packet costs.
  Duration token_process_cost = 0;
};

class TokenLayer : public Layer {
 public:
  TokenLayer() = default;
  explicit TokenLayer(TokenConfig cfg) : cfg_(cfg) {}

  std::string_view name() const override { return "token"; }

  void start() override;
  void down(Message m) override;
  void up(Message m) override;

  struct Stats {
    std::uint64_t token_visits = 0;
    std::uint64_t token_retransmissions = 0;
    std::uint64_t gap_nacks_sent = 0;
    std::uint64_t history_retransmissions = 0;
    std::uint64_t duplicates_dropped = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Messages queued locally waiting for the token.
  std::size_t queued() const { return queued_.size(); }

 private:
  struct Token {
    std::uint64_t serial = 0;
    std::uint64_t next_gseq = 0;
    std::vector<std::uint64_t> delivered;  // per member index
  };

  void on_token(Token t, NodeId from);
  void process_token(Token t);
  void forward_token(Token t);
  void arm_token_retransmit(std::uint64_t serial);
  void on_token_ack(std::uint64_t serial);
  void on_data(std::uint64_t gseq, Message m);
  void on_nack(NodeId requester, const std::vector<std::uint64_t>& gseqs);
  void send_gap_nacks();
  Payload encode_token(const Token& t) const;

  TokenConfig cfg_;

  std::vector<Message> queued_;
  std::map<std::uint64_t, Payload> history_;  // gseq -> our multicast frame (shared)

  std::uint64_t next_deliver_ = 0;
  std::uint64_t highest_gseq_seen_ = 0;
  std::map<std::uint64_t, Message> reorder_;

  std::uint64_t last_serial_seen_ = 0;
  NodeId last_token_sender_{};
  // Outstanding handoff awaiting ack (serial 0 = none).
  std::uint64_t outstanding_serial_ = 0;
  Payload outstanding_bytes_;
  Stats stats_;

  Tracer* tr_ = &Tracer::disabled();
  std::uint32_t n_visit_ = 0, n_gap_nack_ = 0;
};

}  // namespace msw
