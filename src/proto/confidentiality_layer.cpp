#include "proto/confidentiality_layer.hpp"

#include "util/digest.hpp"

namespace msw {

void ConfidentialityLayer::down(Message m) {
  // Nonce = (sender id, counter): unique per message so identical
  // plaintexts produce different ciphertexts.
  const std::uint64_t nonce =
      (static_cast<std::uint64_t>(ctx().self().v) << 40) | next_nonce_++;
  stream_crypt(key_, nonce, m.data.mutable_view());
  m.push_header([&](Writer& w) { w.u64(nonce); });
  ctx().send_down(std::move(m));
}

void ConfidentialityLayer::up(Message m) {
  std::uint64_t nonce = 0;
  try {
    m.pop_header([&](Reader& r) { nonce = r.u64(); });
  } catch (const DecodeError&) {
    return;  // not one of ours
  }
  stream_crypt(key_, nonce, m.data.mutable_view());
  ctx().deliver_up(std::move(m));
}

}  // namespace msw
