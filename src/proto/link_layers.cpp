#include "proto/link_layers.hpp"

#include <cassert>

namespace msw {
namespace {

enum class Type : std::uint8_t { kData = 0, kAck = 1, kPass = 2, kLoop = 3 };

Payload make_data_frame(Message&& m, std::uint64_t seq) {
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(Type::kData));
    w.u64(seq);
  });
  return std::move(m.data);
}

Message make_ack(NodeId to, std::uint64_t seq) {
  Message ack = Message::p2p(to, {});
  ack.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(Type::kAck));
    w.u64(seq);
  });
  return ack;
}

}  // namespace

NodeId LinkLayerBase::peer() const {
  const auto& members = ctx().members();
  assert(members.size() == 2 && "link layers specialize to two-member groups");
  return members[0] == ctx().self() ? members[1] : members[0];
}

void LinkLayerBase::loop_back(const Message& m) {
  // The payload (without our header) returns to our own application,
  // mirroring the group protocols' self-delivery. Deferred a tick to keep
  // the down-path non-reentrant. Sharing the buffer here is free; the kLoop
  // header push below pays the one copy-on-write if it is still shared.
  Payload copy = m.data;
  ctx().set_timer(0, [this, copy = std::move(copy)]() mutable {
    Message local;
    local.data = std::move(copy);
    local.wire_src = ctx().self();
    local.push_header([](Writer& w) { w.u8(static_cast<std::uint8_t>(Type::kLoop)); });
    up(std::move(local));
  });
}

// ------------------------------------------------------------ stop and wait

void StopAndWaitLayer::down(Message m) {
  if (m.is_p2p()) {
    m.push_header([](Writer& w) { w.u8(static_cast<std::uint8_t>(Type::kPass)); });
    ctx().send_down(std::move(m));
    return;
  }
  loop_back(m);
  queue_.push_back(make_data_frame(std::move(m), next_seq_++));
  if (!awaiting_ack_) send_front();
}

void StopAndWaitLayer::down_batch(MessageBatch b) {
  for (const Message& m : b) {
    if (m.is_p2p()) {
      Layer::down_batch(std::move(b));
      return;
    }
  }
  // Enqueue the whole batch with one flat header encode, then kick the ARQ
  // pipeline once — at most one frame goes on the wire either way.
  constexpr std::size_t kHdr = 1 + 8;
  Bytes& scratch = ctx().scratch();
  Writer w(scratch);
  w.reserve(kHdr * b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    w.u8(static_cast<std::uint8_t>(Type::kData));
    w.u64(next_seq_++);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    loop_back(b[i]);
    b[i].push_header_raw(std::span<const Byte>(scratch.data() + i * kHdr, kHdr));
    queue_.push_back(std::move(b[i].data));
  }
  if (!awaiting_ack_) send_front();
}

void StopAndWaitLayer::send_front() {
  if (queue_.empty()) return;
  awaiting_ack_ = true;
  ctx().send_down(Message::p2p(peer(), queue_.front()));
  arm_timer(send_seq_);
}

void StopAndWaitLayer::arm_timer(std::uint64_t seq) {
  ctx().set_timer(cfg_.rto, [this, seq] {
    if (!awaiting_ack_ || send_seq_ != seq || queue_.empty()) return;
    ++stats_.retransmissions;
    ctx().send_down(Message::p2p(peer(), queue_.front()));
    arm_timer(seq);
  });
}

void StopAndWaitLayer::up(Message m) {
  Type type{};
  std::uint64_t seq = 0;
  m.pop_header([&](Reader& r) {
    type = static_cast<Type>(r.u8());
    if (type == Type::kData || type == Type::kAck) seq = r.u64();
  });
  switch (type) {
    case Type::kLoop:
    case Type::kPass:
      ctx().deliver_up(std::move(m));
      return;
    case Type::kData: {
      // Always ack what we have seen; deliver only fresh in-order frames.
      if (seq == expect_) {
        ++expect_;
        // Strip our data header's payload copy: m already popped.
        Message payload = std::move(m);
        ctx().send_down(make_ack(peer(), seq));
        ctx().deliver_up(std::move(payload));
      } else if (seq < expect_) {
        // Duplicate of a delivered frame: the ack was lost; re-ack it.
        ++stats_.duplicates_dropped;
        ctx().send_down(make_ack(peer(), seq));
      }
      return;
    }
    case Type::kAck: {
      if (awaiting_ack_ && seq == send_seq_) {
        awaiting_ack_ = false;
        queue_.pop_front();
        ++send_seq_;
        send_front();
      }
      return;
    }
  }
}

// --------------------------------------------------------------- go-back-n

void GoBackNLayer::down(Message m) {
  if (m.is_p2p()) {
    m.push_header([](Writer& w) { w.u8(static_cast<std::uint8_t>(Type::kPass)); });
    ctx().send_down(std::move(m));
    return;
  }
  loop_back(m);
  backlog_.push_back(make_data_frame(std::move(m), next_seq_++));
  pump();
}

void GoBackNLayer::down_batch(MessageBatch b) {
  for (const Message& m : b) {
    if (m.is_p2p()) {
      Layer::down_batch(std::move(b));
      return;
    }
  }
  // Backlog the whole batch with one flat header encode, then pump once:
  // the same frames leave in the same order, with a single timer re-arm
  // instead of one per message.
  constexpr std::size_t kHdr = 1 + 8;
  Bytes& scratch = ctx().scratch();
  Writer w(scratch);
  w.reserve(kHdr * b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    w.u8(static_cast<std::uint8_t>(Type::kData));
    w.u64(next_seq_++);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    loop_back(b[i]);
    b[i].push_header_raw(std::span<const Byte>(scratch.data() + i * kHdr, kHdr));
    backlog_.push_back(std::move(b[i].data));
  }
  pump();
}

void GoBackNLayer::pump() {
  bool sent = false;
  while (!backlog_.empty() && window_.size() < cfg_.window) {
    const std::uint64_t seq = base_ + window_.size();
    Payload frame = std::move(backlog_.front());
    backlog_.pop_front();
    transmit(seq, frame);
    window_.emplace(seq, std::move(frame));
    sent = true;
  }
  if (sent) arm_timer();
}

void GoBackNLayer::transmit(std::uint64_t seq, const Payload& frame) {
  (void)seq;  // the seq is baked into the frame
  ctx().send_down(Message::p2p(peer(), frame));
}

void GoBackNLayer::arm_timer() {
  const std::uint64_t epoch = ++timer_epoch_;
  ctx().set_timer(cfg_.rto, [this, epoch] {
    if (epoch != timer_epoch_ || window_.empty()) return;
    // Go-back-N: resend the whole window.
    for (const auto& [seq, frame] : window_) {
      ++stats_.retransmissions;
      ctx().send_down(Message::p2p(peer(), frame));
    }
    arm_timer();
  });
}

void GoBackNLayer::up(Message m) {
  Type type{};
  std::uint64_t seq = 0;
  m.pop_header([&](Reader& r) {
    type = static_cast<Type>(r.u8());
    if (type == Type::kData || type == Type::kAck) seq = r.u64();
  });
  switch (type) {
    case Type::kLoop:
    case Type::kPass:
      ctx().deliver_up(std::move(m));
      return;
    case Type::kData: {
      if (seq == expect_) {
        ++expect_;
        ctx().send_down(make_ack(peer(), expect_ - 1));  // cumulative
        ctx().deliver_up(std::move(m));
      } else {
        ++stats_.duplicates_dropped;
        if (expect_ > 0) ctx().send_down(make_ack(peer(), expect_ - 1));
      }
      return;
    }
    case Type::kAck: {
      // Cumulative: everything up to and including seq is acked.
      bool advanced = false;
      while (!window_.empty() && window_.begin()->first <= seq) {
        window_.erase(window_.begin());
        ++base_;
        advanced = true;
      }
      if (advanced) {
        if (window_.empty()) {
          ++timer_epoch_;  // silence the timer
        } else {
          arm_timer();
        }
        pump();
      }
      return;
    }
  }
}

}  // namespace msw
