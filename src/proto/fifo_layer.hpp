// Per-sender FIFO ordering.
//
// Stamps each group multicast with (origin, sequence) and delivers each
// origin's messages to the layer above in send order, buffering gaps. This
// layer only *orders* — it never retransmits; compose it above
// ReliableLayer when the network loses packets, or the gap will stall that
// origin's stream (exactly like a FIFO layer in Horus).
//
// Point-to-point messages from layers above pass through unordered.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "stack/layer.hpp"

namespace msw {

class FifoLayer : public Layer {
 public:
  std::string_view name() const override { return "fifo"; }

  void start() override;
  void down(Message m) override;
  void up(Message m) override;
  void down_batch(MessageBatch b) override;
  void up_batch(MessageBatch b) override;

  /// Messages buffered waiting for a gap to fill (all origins).
  std::size_t buffered() const;

 private:
  struct Origin {
    std::uint64_t next_expected = 0;
    std::map<std::uint64_t, Message> pending;
  };

  std::uint64_t next_seq_ = 0;
  std::unordered_map<std::uint32_t, Origin> origins_;

  Tracer* tr_ = &Tracer::disabled();
  std::uint32_t n_gap_ = 0;
  std::uint64_t gaps_buffered_ = 0;
};

}  // namespace msw
