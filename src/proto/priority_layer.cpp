#include "proto/priority_layer.hpp"

namespace msw {
namespace {

enum class Type : std::uint8_t { kData = 0, kRelease = 1, kPass = 2 };

}  // namespace

void PriorityLayer::down(Message m) {
  if (m.is_p2p()) {
    m.push_header([](Writer& w) { w.u8(static_cast<std::uint8_t>(Type::kPass)); });
    ctx().send_down(std::move(m));
    return;
  }
  const std::uint32_t origin = ctx().self().v;
  const std::uint64_t pseq = next_pseq_++;
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(Type::kData));
    w.u32(origin);
    w.u64(pseq);
  });
  ctx().send_down(std::move(m));
}

void PriorityLayer::up(Message m) {
  Type type{};
  std::uint32_t origin = 0;
  std::uint64_t pseq = 0;
  m.pop_header([&](Reader& r) {
    type = static_cast<Type>(r.u8());
    if (type == Type::kData || type == Type::kRelease) {
      origin = r.u32();
      pseq = r.u64();
    }
  });
  switch (type) {
    case Type::kData:
      on_data({origin, pseq}, std::move(m));
      break;
    case Type::kRelease:
      on_release({origin, pseq});
      break;
    case Type::kPass:
      ctx().deliver_up(std::move(m));
      break;
  }
}

void PriorityLayer::on_data(Key key, Message m) {
  if (delivered_.count(key) > 0) return;  // duplicate
  if (is_master()) {
    delivered_.insert(key);
    // Deliver first, then release: any observer orders the master first.
    ctx().deliver_up(std::move(m));
    Message rel = Message::group({});
    rel.push_header([&](Writer& w) {
      w.u8(static_cast<std::uint8_t>(Type::kRelease));
      w.u32(key.first);
      w.u64(key.second);
    });
    ctx().send_down(std::move(rel));
    return;
  }
  if (released_.count(key) > 0) {
    delivered_.insert(key);
    ctx().deliver_up(std::move(m));
  } else {
    held_.emplace(key, std::move(m));
  }
}

void PriorityLayer::on_release(Key key) {
  if (is_master()) return;  // our own release echoing back
  released_.insert(key);
  auto it = held_.find(key);
  if (it == held_.end()) return;
  Message m = std::move(it->second);
  held_.erase(it);
  if (delivered_.insert(key).second) ctx().deliver_up(std::move(m));
}

}  // namespace msw
