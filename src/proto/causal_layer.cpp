#include "proto/causal_layer.hpp"

#include <cassert>

#include "telemetry/metrics.hpp"

namespace msw {
namespace {

enum class Type : std::uint8_t { kData = 0, kPass = 1 };

}  // namespace

void CausalLayer::start() {
  tr_ = &ctx().tracer();
  n_blocked_ = tr_->intern("causal.blocked");
  if (MetricsRegistry* reg = ctx().metrics()) {
    reg->attach_counter("causal.blocked_total", &blocked_total_);
  }
  delivered_.assign(ctx().member_count(), 0);
}

std::size_t CausalLayer::index_of(std::uint32_t member) const {
  const auto& members = ctx().members();
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i].v == member) return i;
  }
  assert(false && "unknown member");
  return 0;
}

void CausalLayer::down(Message m) {
  if (m.is_p2p()) {
    m.push_header([](Writer& w) { w.u8(static_cast<std::uint8_t>(Type::kPass)); });
    ctx().send_down(std::move(m));
    return;
  }
  // The vector clock: deliveries seen, with our own slot = sends made
  // before this one.
  std::vector<std::uint64_t> vc = delivered_;
  vc[ctx().self_index()] = sent_++;
  const std::uint32_t origin = ctx().self().v;
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(Type::kData));
    w.u32(origin);
    w.u32(static_cast<std::uint32_t>(vc.size()));
    for (std::uint64_t v : vc) w.u64(v);
  });
  ctx().send_down(std::move(m));
}

void CausalLayer::down_batch(MessageBatch b) {
  for (const Message& m : b) {
    if (m.is_p2p()) {
      Layer::down_batch(std::move(b));
      return;
    }
  }
  // Flat encode: every header is 1 + 4 + 4 + 8 * member_count bytes. Each
  // message gets its own vector clock (our slot advances per send), but the
  // other slots are identical across the batch, so encode from delivered_
  // directly instead of materializing a vc copy per message.
  const std::size_t n = ctx().member_count();
  const std::size_t kHdr = 1 + 4 + 4 + 8 * n;
  const std::uint32_t origin = ctx().self().v;
  const std::size_t self_idx = ctx().self_index();
  Bytes& scratch = ctx().scratch();
  Writer w(scratch);
  w.reserve(kHdr * b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    w.u8(static_cast<std::uint8_t>(Type::kData));
    w.u32(origin);
    w.u32(static_cast<std::uint32_t>(n));
    for (std::size_t k = 0; k < n; ++k) {
      w.u64(k == self_idx ? sent_ : delivered_[k]);
    }
    ++sent_;
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i].push_header_raw(std::span<const Byte>(scratch.data() + i * kHdr, kHdr));
  }
  ctx().send_down(std::move(b));
}

void CausalLayer::up(Message m) {
  Type type{};
  std::uint32_t origin = 0;
  std::vector<std::uint64_t> vc;
  m.pop_header([&](Reader& r) {
    type = static_cast<Type>(r.u8());
    if (type == Type::kData) {
      origin = r.u32();
      const std::uint32_t n = r.u32();
      vc.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) vc.push_back(r.u64());
    }
  });
  if (type == Type::kPass) {
    ctx().deliver_up(std::move(m));
    return;
  }
  if (vc.size() != ctx().member_count()) return;  // malformed
  pending_.push_back(Pending{index_of(origin), std::move(vc), std::move(m)});
  if (!deliverable(pending_.back())) {
    ++blocked_total_;
    tr_->instant(n_blocked_, TelemetryTrack::kData, pending_.size());
  }
  drain();
}

void CausalLayer::up_batch(MessageBatch b) {
  MessageBatch out;
  for (Message& m : b) {
    Type type{};
    std::uint32_t origin = 0;
    std::vector<std::uint64_t> vc;
    try {
      m.pop_header([&](Reader& r) {
        type = static_cast<Type>(r.u8());
        if (type == Type::kData) {
          origin = r.u32();
          const std::uint32_t n = r.u32();
          vc.reserve(n);
          for (std::uint32_t i = 0; i < n; ++i) vc.push_back(r.u64());
        }
      });
    } catch (const DecodeError&) {
      continue;  // matches the unbatched per-packet drop at the stack
    }
    if (type == Type::kPass) {
      out.push_back(std::move(m));
      continue;
    }
    if (vc.size() != ctx().member_count()) continue;  // malformed
    pending_.push_back(Pending{index_of(origin), std::move(vc), std::move(m)});
    if (!deliverable(pending_.back())) {
      ++blocked_total_;
      tr_->instant(n_blocked_, TelemetryTrack::kData, pending_.size());
    }
    drain(&out);
  }
  ctx().deliver_up(std::move(out));
}

bool CausalLayer::deliverable(const Pending& p) const {
  // Next in the origin's stream, and every causal dependency satisfied.
  if (delivered_[p.origin_idx] != p.vc[p.origin_idx]) return false;
  for (std::size_t k = 0; k < delivered_.size(); ++k) {
    if (k == p.origin_idx) continue;
    if (delivered_[k] < p.vc[k]) return false;
  }
  return true;
}

void CausalLayer::drain(MessageBatch* out) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (!deliverable(pending_[i])) continue;
      Pending ready = std::move(pending_[i]);
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      ++delivered_[ready.origin_idx];
      if (out != nullptr) out->push_back(std::move(ready.m));
      else ctx().deliver_up(std::move(ready.m));
      progressed = true;
      break;  // restart: delivery may enable earlier entries
    }
  }
}

}  // namespace msw
