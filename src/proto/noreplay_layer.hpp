// No Replay (Table 1): a message body can be delivered at most once to a
// process.
//
// The layer remembers a digest of every payload it has delivered and drops
// any later arrival with an identical payload. Because the payload at this
// layer includes the upper headers (in particular the application header's
// unique per-origin sequence number), a *fresh* application message with a
// repeated body passes — only a literal replay of a previous transmission
// (an attacker re-injecting a recorded packet, or a duplicate slipping
// through lower layers) is suppressed.
//
// The paper highlights that No Replay is memoryless but NOT composable:
// two protocols each enforcing it separately do not enforce it jointly
// across a switch, because each instance keeps its own delivered-set. The
// implementation mirrors that exactly — the set lives in the layer
// instance, so two instances beneath a switching layer share nothing.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "stack/layer.hpp"

namespace msw {

class NoReplayLayer : public Layer {
 public:
  std::string_view name() const override { return "noreplay"; }

  void up(Message m) override;

  std::uint64_t replays_dropped() const { return replays_dropped_; }

 private:
  std::unordered_set<std::uint64_t> seen_;
  std::uint64_t replays_dropped_ = 0;
};

}  // namespace msw
