// NACK-based reliable multicast.
//
// Guarantees that every group multicast submitted above is eventually
// delivered above at every member, assuming a fair-lossy network (every
// retransmission has an independent chance of arriving). Mechanism:
//
//   - the sender stamps (origin, seq), multicasts, and buffers a copy;
//   - receivers track per-origin reception; a sequence gap triggers a
//     point-to-point NACK to the origin, repeated on a timer while the gap
//     persists; the origin retransmits point-to-point;
//   - senders periodically multicast a HEARTBEAT advertising their highest
//     sequence so that a lost *final* message (no later message to expose
//     the gap) is still detected;
//   - receivers periodically ACK their contiguous prefix to each origin,
//     and origins garbage-collect buffered copies acknowledged by all.
//
// Delivery above is unordered (dedup only); compose FifoLayer above for
// per-sender order. Point-to-point traffic of layers above passes through
// without reliability (such layers handle their own retransmission).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "stack/layer.hpp"

namespace msw {

struct ReliableConfig {
  Duration nack_interval = 10 * kMillisecond;
  Duration heartbeat_interval = 50 * kMillisecond;
  Duration ack_interval = 100 * kMillisecond;
  /// SRM-style peer-assisted recovery: every member retains copies of
  /// *delivered* messages (all origins) until group-wide stability, acks
  /// are multicast so stability is common knowledge, and NACKs are sent to
  /// a rotating peer instead of the origin — so a message survives the
  /// crash of its sender as long as one member delivered it. Required
  /// underneath crash-tolerant membership (VsyncLayer flush exclusion).
  bool peer_assist = false;
};

class ReliableLayer : public Layer {
 public:
  ReliableLayer() = default;
  explicit ReliableLayer(ReliableConfig cfg) : cfg_(cfg) {}

  std::string_view name() const override { return "reliable"; }

  void start() override;
  void down(Message m) override;
  void up(Message m) override;

  struct Stats {
    std::uint64_t nacks_sent = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t buffered_copies = 0;  // currently held for retransmission
  };
  Stats stats() const;

 private:
  struct OriginState {
    // Reception tracking: [0, contiguous) all received; `sparse` beyond.
    std::uint64_t contiguous = 0;
    std::set<std::uint64_t> sparse;
    // Highest sequence this origin is known to have sent (from data or
    // heartbeats); exclusive upper bound for gap detection.
    std::uint64_t announced = 0;

    bool received(std::uint64_t seq) const {
      return seq < contiguous || sparse.count(seq) > 0;
    }
  };

  void on_data(std::uint32_t origin, std::uint64_t seq, Message m, const Payload& wire_copy);
  void on_nack(NodeId requester, std::uint32_t origin, const std::vector<std::uint64_t>& seqs);
  void on_heartbeat(std::uint32_t origin, std::uint64_t next_seq);
  void on_ack(std::uint32_t from, std::uint64_t contiguous);
  void on_ack_vector(std::uint32_t from,
                     const std::vector<std::pair<std::uint32_t, std::uint64_t>>& cums);

  void send_nacks();
  void send_heartbeat();
  void send_acks();
  void collect_garbage();
  void collect_store_garbage();
  NodeId nack_target(std::uint32_t origin);

  ReliableConfig cfg_;
  std::uint64_t next_seq_ = 0;
  // Our own multicasts, kept until every member has acked. Payloads share
  // the wire buffer, so retention and retransmission are copy-free.
  std::map<std::uint64_t, Payload> sent_buffer_;
  // Per-member contiguous ack for our stream (indexed by member order).
  std::unordered_map<std::uint32_t, std::uint64_t> acked_by_;
  std::unordered_map<std::uint32_t, OriginState> origins_;
  // peer_assist: everyone's delivered messages (shared buffers) until
  // stability, and the full ack matrix member -> origin -> contiguous.
  std::map<std::uint32_t, std::map<std::uint64_t, Payload>> store_;
  std::map<std::uint32_t, std::map<std::uint32_t, std::uint64_t>> ack_matrix_;
  std::size_t nack_rotation_ = 0;
  Stats stats_;

  Tracer* tr_ = &Tracer::disabled();
  std::uint32_t n_nack_ = 0, n_retx_ = 0;
};

}  // namespace msw
