// NACK-based reliable multicast.
//
// Guarantees that every group multicast submitted above is eventually
// delivered above at every member, assuming a fair-lossy network (every
// retransmission has an independent chance of arriving). Mechanism:
//
//   - the sender stamps (origin, seq), multicasts, and buffers a copy;
//   - receivers track per-origin reception; a sequence gap triggers a
//     point-to-point NACK to the origin, repeated on a timer while the gap
//     persists; the origin retransmits point-to-point;
//   - senders periodically multicast a HEARTBEAT advertising their highest
//     sequence so that a lost *final* message (no later message to expose
//     the gap) is still detected;
//   - receivers periodically ACK their contiguous prefix to each origin,
//     and origins garbage-collect buffered copies acknowledged by all
//     members that still count (see the eviction horizon below).
//
// Control-plane encoding is built for large groups: NACKs carry missing
// *ranges* (varint-delta coded), so a 10^5-sequence partition gap costs a
// handful of bytes instead of one u64 per sequence, and peer-assist ack
// vectors are delta-coded (change-only entries between periodic full
// snapshots, varint fields, origin-gap coding). Legacy per-sequence frames
// are still decoded for mixed-version groups; a legacy-configured decoder
// *drops* the new frame types instead of misparsing them.
//
// Garbage collection is quorum-based but bounded: a member heard from
// nothing for `eviction_horizon` is excluded from the GC quorums (sender
// buffer and peer-assist store), so a permanently crashed member cannot
// pin `sent_buffer_`/`store_` forever. Evictions are provisional: when the
// sent buffer goes empty->non-empty (the start of a burst) every evicted
// member is re-admitted with a fresh horizon, because an idle group
// exchanges no frames at all and healthy members would otherwise evict
// each other and GC the burst's first message before its receivers can
// NACK a lost copy. Explicit caps (`max_sent_buffer`,
// `max_store_per_origin`) back-stop retention against a stalled quorum;
// evicting a copy is deliberate, counted loss-of-retransmittability, not
// an invariant violation.
//
// Delivery above is unordered (dedup only); compose FifoLayer above for
// per-sender order. Point-to-point traffic of layers above passes through
// without reliability (such layers handle their own retransmission).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "stack/layer.hpp"
#include "util/seq_tracker.hpp"

namespace msw {

struct ReliableConfig {
  Duration nack_interval = 10 * kMillisecond;
  Duration heartbeat_interval = 50 * kMillisecond;
  Duration ack_interval = 100 * kMillisecond;
  /// SRM-style peer-assisted recovery: every member retains copies of
  /// *delivered* messages (all origins) until group-wide stability, acks
  /// are multicast so stability is common knowledge, and NACKs are sent to
  /// a rotating peer instead of the origin — so a message survives the
  /// crash of its sender as long as one member delivered it. Required
  /// underneath crash-tolerant membership (VsyncLayer flush exclusion).
  bool peer_assist = false;
  /// A member heard from nothing (data, ack, heartbeat, NACK) for this
  /// long is excluded from garbage-collection quorums until it speaks
  /// again — or until the sent buffer goes empty->non-empty, which
  /// re-admits all evicted members with a fresh horizon (an idle group is
  /// silent by design; idleness must not shrink the quorum for the next
  /// burst). So a permanently crashed member cannot stall GC and grow the
  /// retention buffers without bound. 0 disables eviction (the pre-scale
  /// all-members-must-ack semantics).
  Duration eviction_horizon = 30 * kSecond;
  /// Hard cap on sent_buffer_ entries; the oldest copies are evicted past
  /// it (counted in stats().buffer_evictions). 0 = unbounded.
  std::size_t max_sent_buffer = 8192;
  /// Per-origin cap on peer-assist store entries. 0 = unbounded.
  std::size_t max_store_per_origin = 8192;
  /// Emit (and only accept) the pre-range wire format: per-sequence u64
  /// NACK lists and fixed-width full ack vectors. Exists for mixed-version
  /// tests and the encoding ablation in bench_group_scaling.
  bool legacy_control = false;
  /// With delta ack vectors, every k-th ack tick sends a full snapshot so
  /// a member that missed earlier deltas (loss, late join) converges.
  std::uint32_t full_ack_every = 8;
  /// Test-visible override of the per-frame ack-vector entry cap. 0 = the
  /// wire format's u16 maximum (65535); larger values are clamped to it.
  /// Lowering it lets tests exercise the oversized-vector frame split
  /// without simulating 65k origins.
  std::size_t max_ack_entries_per_frame = 0;
};

/// Control-plane wire codecs, exposed for tests (round-trip, truncation,
/// mixed-version) and shared by ReliableLayer::up/send paths. Each codec
/// covers the frame body *after* the type byte.
namespace relwire {

struct NackFrame {
  std::uint32_t origin = 0;
  std::vector<SeqRange> ranges;
};

/// Range NACK body: u32 origin, u16 range count, then per range a varint
/// start (delta from the previous range's end) and varint (length - 1).
/// encode_nack throws DecodeError if ranges.size() exceeds the u16 count
/// (callers cap batches well below it) instead of silently truncating.
void encode_nack(Writer& w, const NackFrame& f);
NackFrame decode_nack(Reader& r);

struct AckVecFrame {
  std::uint32_t sender = 0;
  /// Full snapshot (every known origin) vs. change-only delta.
  bool full = true;
  /// (origin, contiguous) pairs, ascending by origin.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> cums;
};

/// Delta ack-vector body: u32 sender, u8 flags, u16 entry count, then per
/// entry a varint origin gap (delta from the previous origin + 1) and a
/// varint cumulative ack. encode_ack_vec throws DecodeError if cums.size()
/// exceeds the u16 count (the send path splits oversized vectors across
/// frames) instead of silently truncating.
void encode_ack_vec(Writer& w, const AckVecFrame& f);
AckVecFrame decode_ack_vec(Reader& r);

}  // namespace relwire

class ReliableLayer : public Layer {
 public:
  ReliableLayer() = default;
  explicit ReliableLayer(ReliableConfig cfg) : cfg_(cfg) {}

  std::string_view name() const override { return "reliable"; }

  void start() override;
  void down(Message m) override;
  void up(Message m) override;
  void down_batch(MessageBatch b) override;
  void up_batch(MessageBatch b) override;

  struct Stats {
    std::uint64_t nacks_sent = 0;
    std::uint64_t retransmissions = 0;
    /// Own-stream copies re-delivered locally from sent_buffer_ after a
    /// crash dropped their loopback copies (see refill_own_gaps).
    std::uint64_t self_refills = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t buffered_copies = 0;  // currently held for retransmission
    /// Control-plane accounting (headers incl. framing, as sent down).
    std::uint64_t nack_bytes_sent = 0;
    std::uint64_t nack_entries_sent = 0;  // ranges (or seqs under legacy)
    std::uint64_t ack_bytes_sent = 0;
    std::uint64_t ack_entries_sent = 0;
    std::uint64_t ack_frames_sent = 0;  // frames, so tests can see splits
    /// Members excluded from GC quorums by the eviction horizon.
    std::uint64_t members_evicted = 0;
    /// Copies dropped by the max_sent_buffer / max_store_per_origin caps.
    std::uint64_t buffer_evictions = 0;
    /// Frames dropped as undecodable (unknown type, truncation, or a new
    /// frame arriving at a legacy_control decoder).
    std::uint64_t decode_drops = 0;
  };
  Stats stats() const;

 private:
  struct OriginState {
    /// Reception tracking: contiguous prefix + interval-coded sparse set.
    SeqTracker track;
    /// Highest sequence this origin is known to have sent (from data or
    /// heartbeats); exclusive upper bound for gap detection.
    std::uint64_t announced = 0;
  };

  /// `out` non-null collects the delivery into a batch instead of
  /// delivering immediately (the batched receive path).
  void on_data(std::uint32_t origin, std::uint64_t seq, Message m, const Payload& wire_copy,
               MessageBatch* out = nullptr);
  /// Shared body of up()/up_batch(): with `out` null, deliveries go up
  /// immediately; non-null, they append to the batch (which is flushed
  /// before any handler that can send, preserving wire ordering).
  void up_impl(Message m, MessageBatch* out);
  void on_nack(NodeId requester, std::uint32_t origin, const std::vector<SeqRange>& ranges);
  void on_heartbeat(std::uint32_t origin, std::uint64_t next_seq);
  void on_ack(std::uint32_t from, std::uint64_t contiguous);
  void on_ack_vector(std::uint32_t from,
                     const std::vector<std::pair<std::uint32_t, std::uint64_t>>& cums);

  void send_nacks();
  void refill_own_gaps();
  void send_heartbeat();
  void send_acks();
  void ack_tick();
  void collect_garbage();
  void collect_store_garbage();
  void update_evictions();
  bool counts_for_gc(std::uint32_t member) const;
  NodeId nack_target(std::uint32_t origin);

  ReliableConfig cfg_;
  std::uint64_t next_seq_ = 0;
  // Our own multicasts, kept until every counted member has acked (or the
  // cap evicts them). Payloads share the wire buffer, so retention and
  // retransmission are copy-free.
  std::map<std::uint64_t, Payload> sent_buffer_;
  // Per-member contiguous ack for our stream (indexed by member order).
  std::unordered_map<std::uint32_t, std::uint64_t> acked_by_;
  std::unordered_map<std::uint32_t, OriginState> origins_;
  // peer_assist: everyone's delivered messages (shared buffers) until
  // stability, and the full ack matrix member -> origin -> contiguous.
  std::map<std::uint32_t, std::map<std::uint64_t, Payload>> store_;
  std::map<std::uint32_t, std::map<std::uint32_t, std::uint64_t>> ack_matrix_;
  std::size_t nack_rotation_ = 0;
  // Liveness for the eviction horizon: when each member was last heard
  // (any frame), and the set currently excluded from GC quorums. A member
  // with no last_heard_ entry is backdated to quorum_baseline_ — the later
  // of layer start and the first moment there was something to ack.
  std::unordered_map<std::uint32_t, Time> last_heard_;
  std::set<std::uint32_t> evicted_;
  Time quorum_baseline_ = 0;
  // Delta ack-vector state: what we last advertised per origin, and the
  // tick counter driving periodic full snapshots.
  std::unordered_map<std::uint32_t, std::uint64_t> last_ack_sent_;
  std::uint32_t ack_round_ = 0;
  // Own-stream sequences below this bound have had a full NACK interval
  // for their loopback copy to arrive; anything still missing is lost
  // (crash downtime) and is re-delivered from sent_buffer_.
  std::uint64_t refill_bound_ = 0;
  Stats stats_;

  Tracer* tr_ = &Tracer::disabled();
  std::uint32_t n_nack_ = 0, n_retx_ = 0, n_refill_ = 0;
};

}  // namespace msw
