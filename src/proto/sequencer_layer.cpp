#include "proto/sequencer_layer.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "util/log.hpp"

namespace msw {
namespace {

enum class Type : std::uint8_t {
  kOrderReq = 0,
  kSequenced = 1,
  kGapNack = 2,
  kGcAck = 3,
  kPass = 4,
  kHeartbeat = 5,
};

constexpr std::size_t kMaxNackBatch = 64;

}  // namespace

void SequencerLayer::start() {
  tr_ = &ctx().tracer();
  n_gap_nack_ = tr_->intern("seq.gap_nack");
  n_retx_ = tr_->intern("seq.history_retransmit");
  if (MetricsRegistry* reg = ctx().metrics()) {
    reg->attach_counter("seq.requests_retransmitted", &stats_.requests_retransmitted);
    reg->attach_counter("seq.gap_nacks_sent", &stats_.gap_nacks_sent);
    reg->attach_counter("seq.history_retransmissions", &stats_.history_retransmissions);
    reg->attach_counter("seq.duplicates_dropped", &stats_.duplicates_dropped);
    reg->attach_counter("seq.sequenced", &stats_.sequenced);
    // Queue depth the switch policy's SignalPlane reads: order requests this
    // sender has submitted that the sequencer has not echoed back yet. It
    // grows exactly when the sequencer saturates (Figure 2's rising curve).
    pending_gauge_ = &reg->gauge("seq.pending");
  }
  ctx().set_timer(cfg_.request_rto, [this] { retransmit_pending(); });
  ctx().set_timer(cfg_.nack_interval, [this] { send_gap_nacks(); });
  ctx().set_timer(cfg_.ack_interval, [this] { send_gc_ack(); });
  if (is_sequencer()) {
    ctx().set_timer(cfg_.heartbeat_interval, [this] { send_heartbeat(); });
  }
}

void SequencerLayer::down(Message m) {
  if (m.is_p2p()) {
    m.push_header([](Writer& w) { w.u8(static_cast<std::uint8_t>(Type::kPass)); });
    ctx().send_down(std::move(m));
    return;
  }
  const std::uint32_t origin = ctx().self().v;
  const std::uint64_t oseq = next_oseq_++;
  if (is_sequencer()) {
    // Local short-circuit: the sequencer orders its own messages directly;
    // no request can be lost, so nothing is buffered for retransmission.
    sequence_and_multicast(origin, oseq, std::move(m));
    return;
  }
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(Type::kOrderReq));
    w.u32(origin);
    w.u64(oseq);
  });
  pending_.emplace(oseq, m.data);
  if (pending_gauge_) pending_gauge_->set(static_cast<std::int64_t>(pending_.size()));
  m.point_to = sequencer();
  ctx().send_down(std::move(m));
}

void SequencerLayer::up(Message m) {
  Type type{};
  std::uint32_t origin = 0;
  std::uint64_t oseq = 0;
  std::uint64_t gseq = 0;
  std::vector<std::uint64_t> nack_gseqs;
  m.pop_header([&](Reader& r) {
    type = static_cast<Type>(r.u8());
    switch (type) {
      case Type::kOrderReq:
        origin = r.u32();
        oseq = r.u64();
        break;
      case Type::kSequenced:
        gseq = r.u64();
        origin = r.u32();
        oseq = r.u64();
        break;
      case Type::kGapNack: {
        const std::uint32_t count = r.u32();
        nack_gseqs.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) nack_gseqs.push_back(r.u64());
        break;
      }
      case Type::kGcAck:
        origin = r.u32();
        gseq = r.u64();
        break;
      case Type::kHeartbeat:
        gseq = r.u64();
        break;
      case Type::kPass:
        break;
    }
  });
  switch (type) {
    case Type::kOrderReq:
      on_order_req(origin, oseq, std::move(m));
      break;
    case Type::kSequenced:
      on_sequenced(gseq, origin, oseq, std::move(m));
      break;
    case Type::kGapNack:
      on_gap_nack(m.wire_src, nack_gseqs);
      break;
    case Type::kGcAck:
      on_gc_ack(origin, gseq);
      break;
    case Type::kHeartbeat:
      highest_gseq_seen_ = std::max(highest_gseq_seen_, gseq);
      break;
    case Type::kPass:
      ctx().deliver_up(std::move(m));
      break;
  }
}

void SequencerLayer::down_batch(MessageBatch b) {
  for (const Message& m : b) {
    if (m.is_p2p()) {
      Layer::down_batch(std::move(b));  // mixed run: per-message path
      return;
    }
  }
  if (!is_sequencer()) {
    // Order requests leave point-to-point (one per message by design — the
    // sequencer acks them individually); nothing to amortize here.
    Layer::down_batch(std::move(b));
    return;
  }
  // Sequencer fast path: assign the whole run's global sequence numbers in
  // one pass — flat header encode, one amortized ordering charge (same
  // total CPU as per-message), one batched multicast below.
  const std::uint32_t origin = ctx().self().v;
  constexpr std::size_t kHdr = 21;  // u8 type + u64 gseq + u32 origin + u64 oseq
  Bytes& scratch = ctx().scratch();
  Writer w(scratch);
  w.reserve(kHdr * b.size());
  MessageBatch out;
  out.reserve(b.size());
  std::uint64_t ordered = 0;
  for (Message& m : b) {
    const std::uint64_t oseq = next_oseq_++;
    if (!sequenced_oseqs_[origin].insert(oseq)) {
      ++stats_.duplicates_dropped;  // unreachable for fresh oseqs; kept for parity
      continue;
    }
    const std::uint64_t gseq = next_gseq_++;
    ++stats_.sequenced;
    ++ordered;
    const std::size_t off = scratch.size();
    w.u8(static_cast<std::uint8_t>(Type::kSequenced));
    w.u64(gseq);
    w.u32(origin);
    w.u64(oseq);
    m.push_header_raw(std::span<const Byte>(scratch.data() + off, kHdr));
    history_.emplace(gseq, m.data);
    assigned_.emplace(std::make_pair(origin, oseq), gseq);
    m.point_to.reset();
    out.push_back(std::move(m));
  }
  ctx().consume_cpu(static_cast<Duration>(ordered) * cfg_.order_cost);
  ctx().send_down(std::move(out));
}

void SequencerLayer::up_batch(MessageBatch b) {
  MessageBatch out;
  // Handlers that may send (order requests, gap nacks) see the stack in the
  // same state as per-message execution: queued deliveries flush first.
  auto flush = [&] {
    if (!out.empty()) {
      ctx().deliver_up(std::move(out));
      out = MessageBatch{};
    }
  };
  for (Message& m : b) {
    Type type{};
    std::uint32_t origin = 0;
    std::uint64_t oseq = 0;
    std::uint64_t gseq = 0;
    std::vector<std::uint64_t> nack_gseqs;
    try {
      m.pop_header([&](Reader& r) {
        type = static_cast<Type>(r.u8());
        switch (type) {
          case Type::kOrderReq:
            origin = r.u32();
            oseq = r.u64();
            break;
          case Type::kSequenced:
            gseq = r.u64();
            origin = r.u32();
            oseq = r.u64();
            break;
          case Type::kGapNack: {
            const std::uint32_t count = r.u32();
            nack_gseqs.reserve(count);
            for (std::uint32_t i = 0; i < count; ++i) nack_gseqs.push_back(r.u64());
            break;
          }
          case Type::kGcAck:
            origin = r.u32();
            gseq = r.u64();
            break;
          case Type::kHeartbeat:
            gseq = r.u64();
            break;
          case Type::kPass:
            break;
        }
      });
    } catch (const DecodeError&) {
      continue;  // drop the malformed message, keep its runmates
    }
    switch (type) {
      case Type::kOrderReq:
        flush();
        on_order_req(origin, oseq, std::move(m));
        break;
      case Type::kSequenced:
        on_sequenced(gseq, origin, oseq, std::move(m), &out);
        break;
      case Type::kGapNack:
        flush();
        on_gap_nack(m.wire_src, nack_gseqs);
        break;
      case Type::kGcAck:
        on_gc_ack(origin, gseq);
        break;
      case Type::kHeartbeat:
        highest_gseq_seen_ = std::max(highest_gseq_seen_, gseq);
        break;
      case Type::kPass:
        out.push_back(std::move(m));
        break;
    }
  }
  ctx().deliver_up(std::move(out));
}

void SequencerLayer::on_order_req(std::uint32_t origin, std::uint64_t oseq, Message m) {
  if (!is_sequencer()) return;  // misrouted
  sequence_and_multicast(origin, oseq, std::move(m));
}

void SequencerLayer::sequence_and_multicast(std::uint32_t origin, std::uint64_t oseq,
                                            Message m) {
  if (!sequenced_oseqs_[origin].insert(oseq)) {
    // Duplicate request: the original SEQUENCED copy to the origin was
    // probably lost. Retransmit it point-to-point if still in history.
    ++stats_.duplicates_dropped;
    auto at = assigned_.find({origin, oseq});
    if (at != assigned_.end()) {
      auto ht = history_.find(at->second);
      if (ht != history_.end()) {
        ++stats_.history_retransmissions;
        ctx().send_down(Message::p2p(NodeId{origin}, ht->second));
      }
    }
    return;
  }
  const std::uint64_t gseq = next_gseq_++;
  ++stats_.sequenced;
  ctx().consume_cpu(cfg_.order_cost);
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(Type::kSequenced));
    w.u64(gseq);
    w.u32(origin);
    w.u64(oseq);
  });
  history_.emplace(gseq, m.data);
  assigned_.emplace(std::make_pair(origin, oseq), gseq);
  m.point_to.reset();
  ctx().send_down(std::move(m));
}

void SequencerLayer::on_sequenced(std::uint64_t gseq, std::uint32_t origin, std::uint64_t oseq,
                                  Message m, MessageBatch* out) {
  highest_gseq_seen_ = std::max(highest_gseq_seen_, gseq + 1);
  if (origin == ctx().self().v) {
    pending_.erase(oseq);  // implicit ack
    if (pending_gauge_) pending_gauge_->set(static_cast<std::int64_t>(pending_.size()));
  }
  if (gseq < next_deliver_ || reorder_.count(gseq) > 0) {
    ++stats_.duplicates_dropped;
    return;
  }
  reorder_.emplace(gseq, std::move(m));
  for (auto it = reorder_.find(next_deliver_); it != reorder_.end();
       it = reorder_.find(next_deliver_)) {
    Message ready = std::move(it->second);
    reorder_.erase(it);
    ++next_deliver_;
    if (out != nullptr) {
      out->push_back(std::move(ready));
    } else {
      ctx().deliver_up(std::move(ready));
    }
  }
}

void SequencerLayer::on_gap_nack(NodeId requester, const std::vector<std::uint64_t>& gseqs) {
  if (!is_sequencer()) return;
  for (std::uint64_t gseq : gseqs) {
    auto it = history_.find(gseq);
    if (it == history_.end()) continue;
    ++stats_.history_retransmissions;
    ctx().send_down(Message::p2p(requester, it->second));
  }
}

void SequencerLayer::on_gc_ack(std::uint32_t from, std::uint64_t contiguous) {
  if (!is_sequencer()) return;
  auto& acked = gc_acked_[from];
  acked = std::max(acked, contiguous);
  if (gc_acked_.size() + 1 < ctx().member_count()) return;
  std::uint64_t min_acked = next_deliver_;  // the sequencer's own progress
  for (const auto& [member, a] : gc_acked_) min_acked = std::min(min_acked, a);
  while (!history_.empty() && history_.begin()->first < min_acked) {
    history_.erase(history_.begin());
  }
  // assigned_ is keyed by (origin, oseq), not gseq, so sweep it linearly.
  for (auto it = assigned_.begin(); it != assigned_.end();) {
    if (it->second < min_acked) {
      it = assigned_.erase(it);
    } else {
      ++it;
    }
  }
}

void SequencerLayer::retransmit_pending() {
  // Only nudge the oldest few requests per tick. Under sequencer overload
  // the pending set grows; blindly resending all of it floods the
  // sequencer with duplicates and collapses goodput entirely.
  constexpr std::size_t kMaxRetransmitBatch = 4;
  std::size_t n = 0;
  for (const auto& [oseq, bytes] : pending_) {
    if (++n > kMaxRetransmitBatch) break;
    ++stats_.requests_retransmitted;
    ctx().send_down(Message::p2p(sequencer(), bytes));
  }
  ctx().set_timer(cfg_.request_rto, [this] { retransmit_pending(); });
}

void SequencerLayer::send_gap_nacks() {
  // The sequencer's horizon is its own assignment counter: its loopback
  // SEQUENCED copies can be lost when the node crashes, and no other member
  // can serve a nack on its behalf — it refills such gaps straight from
  // local history instead (GC never collects below its own next_deliver_,
  // so the bytes are always still there).
  const std::uint64_t horizon = is_sequencer() ? next_gseq_ : highest_gseq_seen_;
  if (next_deliver_ < horizon) {
    // Enumerate gaps from the reorder buffer's keys — O(held + ranges),
    // not O(horizon - next_deliver_), which matters after a long partition.
    std::vector<std::uint64_t> missing;
    for (const SeqRange& r :
         missing_ranges_in(reorder_, next_deliver_, horizon, kMaxNackBatch)) {
      for (std::uint64_t g = r.begin; g < r.end; ++g) missing.push_back(g);
    }
    if (!missing.empty()) {
      if (is_sequencer()) {
        if (cfg_.fault_skip_self_refill) {
          // Injected bug: behave like the pre-fix sequencer that assumed
          // its loopback copies could never be lost.
          ctx().set_timer(cfg_.nack_interval, [this] { send_gap_nacks(); });
          return;
        }
        for (std::uint64_t g : missing) {
          auto it = history_.find(g);
          if (it == history_.end()) continue;
          ++stats_.history_retransmissions;
          ctx().send_down(Message::p2p(ctx().self(), it->second));
        }
      } else {
        ++stats_.gap_nacks_sent;
        tr_->instant(n_gap_nack_, TelemetryTrack::kData);
        Message m = Message::p2p(sequencer(), {});
        m.push_header([&](Writer& w) {
          w.u8(static_cast<std::uint8_t>(Type::kGapNack));
          w.u32(static_cast<std::uint32_t>(missing.size()));
          for (std::uint64_t g : missing) w.u64(g);
        });
        ctx().send_down(std::move(m));
      }
    }
  }
  ctx().set_timer(cfg_.nack_interval, [this] { send_gap_nacks(); });
}

void SequencerLayer::send_heartbeat() {
  if (next_gseq_ > 0) {
    Message m = Message::group({});
    const std::uint64_t horizon = next_gseq_;
    m.push_header([&](Writer& w) {
      w.u8(static_cast<std::uint8_t>(Type::kHeartbeat));
      w.u64(horizon);
    });
    ctx().send_down(std::move(m));
  }
  ctx().set_timer(cfg_.heartbeat_interval, [this] { send_heartbeat(); });
}

void SequencerLayer::send_gc_ack() {
  if (!is_sequencer()) {
    Message m = Message::p2p(sequencer(), {});
    const std::uint32_t self = ctx().self().v;
    const std::uint64_t contiguous = next_deliver_;
    m.push_header([&](Writer& w) {
      w.u8(static_cast<std::uint8_t>(Type::kGcAck));
      w.u32(self);
      w.u64(contiguous);
    });
    ctx().send_down(std::move(m));
  }
  ctx().set_timer(cfg_.ack_interval, [this] { send_gc_ack(); });
}

}  // namespace msw
