// Confidentiality (Table 1): non-trusted processes cannot see messages
// from trusted processes.
//
// Trusted processes share a group key; the layer encrypts the entire
// payload (body plus all upper-layer headers) under a per-message nonce on
// the way down and decrypts on the way up. A process without the key sees
// only ciphertext; a message that fails to decrypt into a well-formed
// upper stack is discarded by the layers above. The cipher is simulated
// (util/digest.hpp); the property depends only on key-holders-only
// reversibility.
#pragma once

#include <cstdint>

#include "stack/layer.hpp"

namespace msw {

class ConfidentialityLayer : public Layer {
 public:
  explicit ConfidentialityLayer(std::uint64_t group_key) : key_(group_key) {}

  std::string_view name() const override { return "confidentiality"; }

  void down(Message m) override;
  void up(Message m) override;

 private:
  std::uint64_t key_;
  std::uint64_t next_nonce_ = 0;
};

}  // namespace msw
