// Virtual Synchrony (Table 1): a process only delivers messages from
// processes in some common view, and processes that move together from one
// view to the next deliver the same set of messages in between.
//
// This is a deliberately simplified, coordinator-driven membership layer
// in the style of the Horus/Ensemble membership protocols:
//
//   - the first group member is the coordinator; views are logical member
//     lists layered over the (static) simulated group;
//   - data messages are tagged with the view they were sent in and are
//     delivered only within that view (future-view messages are buffered,
//     past-view messages dropped);
//   - a view change runs a flush: FLUSH_REQ blocks sending everywhere and
//     collects per-member sent counts; the coordinator disseminates the
//     resulting CUT; members deliver exactly the cut's messages, then
//     install the view, delivering a view *notification message* to the
//     application (AppHeader kind kView) — view markers in captured traces
//     are exactly these deliveries;
//   - queued sends are released in the new view.
//
// Compose above a reliable layer: the flush relies on every counted
// message eventually arriving. The paper notes Virtual Synchrony is not
// Memoryless and hence NOT preserved by the switching protocol — but a
// flush like this one can itself implement switching while preserving it
// (section 8 future work; see switch/vsync_switch.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "stack/layer.hpp"

namespace msw {

/// Encoding of a view notification's body (shared with applications).
Bytes encode_view_body(const std::vector<std::uint32_t>& members);
std::vector<std::uint32_t> decode_view_body(std::span<const Byte> body);

struct VsyncConfig {
  /// 0: the flush waits for every member (a crashed member wedges the view
  /// change — the original behaviour). >0: the coordinator excludes
  /// members that have not replied within this timeout; the cut for an
  /// excluded member's stream is the maximum any survivor has delivered,
  /// recovered where needed through peer-assisted retransmission (compose
  /// above ReliableLayer with peer_assist = true).
  Duration flush_timeout = 0;
};

class VsyncLayer : public Layer {
 public:
  VsyncLayer() = default;
  explicit VsyncLayer(VsyncConfig cfg) : cfg_(cfg) {}

  std::string_view name() const override { return "vsync"; }

  void start() override;
  void down(Message m) override;
  void up(Message m) override;

  /// Coordinator-only API: install a new logical view after a flush.
  /// Returns false if a view change is already in progress or this member
  /// is not the coordinator.
  bool request_view_change(std::vector<std::uint32_t> new_members);

  std::uint64_t current_view() const { return view_id_; }
  const std::vector<std::uint32_t>& view_members() const { return view_members_; }
  bool flushing() const { return flushing_; }

 private:
  bool is_coordinator() const { return ctx().self() == ctx().members().front(); }

  void on_data(std::uint64_t view_id, std::uint32_t origin, Message m);
  void deliver_counted(std::uint32_t origin, Message m);
  void on_flush_req(std::uint64_t new_view_id, std::vector<std::uint32_t> new_members);
  void on_flush_ok(std::uint64_t new_view_id, std::uint32_t from, std::uint64_t sent,
                   std::map<std::uint32_t, std::uint64_t> delivered);
  void on_cut(std::uint64_t new_view_id, std::vector<std::uint32_t> final_members,
              std::map<std::uint32_t, std::uint64_t> counts);
  void send_cut();
  void maybe_install_view();
  void install_view();

  VsyncConfig cfg_;
  std::uint64_t view_id_ = 1;
  std::vector<std::uint32_t> view_members_;

  // Sender side.
  std::uint64_t sent_in_view_ = 0;
  std::deque<Message> queued_;

  // Receiver side.
  struct FutureMsg {
    std::uint64_t view_id;
    std::uint32_t origin;
    Message m;
  };
  std::unordered_map<std::uint32_t, std::uint64_t> delivered_in_view_;
  std::vector<FutureMsg> future_;

  // Flush state.
  bool flushing_ = false;
  std::uint64_t pending_view_id_ = 0;
  std::vector<std::uint32_t> pending_members_;
  bool have_cut_ = false;
  std::map<std::uint32_t, std::uint64_t> cut_counts_;
  std::vector<std::uint32_t> cut_members_;
  // Data received after our FLUSH_OK but before the CUT: held so that no
  // member delivers beyond what the cut will allow.
  std::vector<FutureMsg> held_;
  // Coordinator only: collected flush acks (sent count + per-origin
  // delivered snapshot), exclusion timer, re-entrancy guard.
  struct FlushOk {
    std::uint64_t sent = 0;
    std::map<std::uint32_t, std::uint64_t> delivered;
  };
  std::map<std::uint32_t, FlushOk> flush_oks_;
  TimerId flush_timer_{};
  bool change_in_progress_ = false;

  Tracer* tr_ = &Tracer::disabled();
  std::uint32_t n_flush_ = 0, n_view_ = 0;
  std::uint64_t views_installed_ = 0;
};

}  // namespace msw
