#include "proto/integrity_layer.hpp"

#include "util/digest.hpp"
#include "util/log.hpp"

namespace msw {

void IntegrityLayer::down(Message m) {
  const std::uint32_t sender = ctx().self().v;
  const std::uint64_t tag = mac(key_, sender, m.data.view());
  m.push_header([&](Writer& w) {
    w.u32(sender);
    w.u64(tag);
  });
  ctx().send_down(std::move(m));
}

void IntegrityLayer::up(Message m) {
  std::uint32_t claimed_sender = 0;
  std::uint64_t tag = 0;
  try {
    m.pop_header([&](Reader& r) {
      claimed_sender = r.u32();
      tag = r.u64();
    });
  } catch (const DecodeError&) {
    ++stats_.rejected;
    return;
  }
  if (mac(key_, claimed_sender, m.data.view()) != tag) {
    ++stats_.rejected;
    MSW_LOG(kDebug, "integrity", ctx().now())
        << to_string(ctx().self()) << " rejected forged message (claimed sender "
        << claimed_sender << ")";
    return;
  }
  ++stats_.accepted;
  ctx().deliver_up(std::move(m));
}

}  // namespace msw
