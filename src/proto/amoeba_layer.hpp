// The "Amoeba" property (Table 1): a process is blocked from sending while
// it is awaiting its own messages.
//
// The layer enforces the restriction by queueing: at most one of this
// process's messages is outstanding below this layer at a time; the next
// queued message is released only when the previous one has been delivered
// back to this process. Cooperative applications can poll ready() to avoid
// submitting while blocked, which makes the application-boundary trace
// satisfy the property too (see the switching demo, where two independent
// layer instances beneath a switch visibly break it — the paper's example
// of a property that is neither Delayable nor Send Enabled, section 5.3/5.4).
#pragma once

#include <cstdint>
#include <deque>

#include "stack/layer.hpp"

namespace msw {

class AmoebaLayer : public Layer {
 public:
  std::string_view name() const override { return "amoeba"; }

  void down(Message m) override;
  void up(Message m) override;

  /// True when a send submitted now would go out immediately (nothing of
  /// ours outstanding and nothing queued).
  bool ready() const { return !awaiting_ && queued_.empty(); }

  std::size_t queued() const { return queued_.size(); }

 private:
  void release(Message m);

  bool awaiting_ = false;
  std::uint64_t next_aseq_ = 0;
  std::deque<Message> queued_;
};

}  // namespace msw
