#include "proto/noreplay_layer.hpp"

#include "util/digest.hpp"

namespace msw {

void NoReplayLayer::up(Message m) {
  const std::uint64_t digest = fnv1a(m.data.view());
  if (!seen_.insert(digest).second) {
    ++replays_dropped_;
    return;
  }
  ctx().deliver_up(std::move(m));
}

}  // namespace msw
