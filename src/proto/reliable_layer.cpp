#include "proto/reliable_layer.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "util/log.hpp"

namespace msw {
namespace {

enum class Type : std::uint8_t {
  kData = 0,
  kPass = 1,
  kNack = 2,
  kHeartbeat = 3,
  kAck = 4,
  kAckVec = 5,
};

/// Cap on missing sequences requested per NACK round, to bound control
/// traffic after long partitions.
constexpr std::size_t kMaxNackBatch = 64;

}  // namespace

void ReliableLayer::start() {
  tr_ = &ctx().tracer();
  n_nack_ = tr_->intern("rel.nack");
  n_retx_ = tr_->intern("rel.retransmit");
  if (MetricsRegistry* reg = ctx().metrics()) {
    reg->attach_counter("rel.nacks_sent", &stats_.nacks_sent);
    reg->attach_counter("rel.retransmissions", &stats_.retransmissions);
    reg->attach_counter("rel.duplicates_dropped", &stats_.duplicates_dropped);
  }
  ctx().set_timer(cfg_.nack_interval, [this] { send_nacks(); });
  ctx().set_timer(cfg_.heartbeat_interval, [this] { send_heartbeat(); });
  ctx().set_timer(cfg_.ack_interval, [this] { send_acks(); });
}

void ReliableLayer::down(Message m) {
  if (m.is_p2p()) {
    m.push_header([](Writer& w) { w.u8(static_cast<std::uint8_t>(Type::kPass)); });
    ctx().send_down(std::move(m));
    return;
  }
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t origin = ctx().self().v;
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(Type::kData));
    w.u32(origin);
    w.u64(seq);
  });
  sent_buffer_.emplace(seq, m.data);  // shares the buffer for retransmission
  ctx().send_down(std::move(m));
}

void ReliableLayer::up(Message m) {
  // peer_assist needs the wire form (header included) to store for peers;
  // grabbing it before the pops below is free — the Payload shares the
  // receive buffer and keeps its own (longer) logical view of it.
  Payload wire_copy;
  if (cfg_.peer_assist) wire_copy = m.data;

  Type type{};
  std::uint32_t origin = 0;
  std::uint64_t seq = 0;
  std::vector<std::uint64_t> nack_seqs;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> ack_vec;
  m.pop_header([&](Reader& r) {
    type = static_cast<Type>(r.u8());
    switch (type) {
      case Type::kData:
        origin = r.u32();
        seq = r.u64();
        break;
      case Type::kPass:
        break;
      case Type::kNack: {
        origin = r.u32();
        const std::uint32_t count = r.u32();
        nack_seqs.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) nack_seqs.push_back(r.u64());
        break;
      }
      case Type::kHeartbeat:
        origin = r.u32();
        seq = r.u64();
        break;
      case Type::kAck:
        origin = r.u32();
        seq = r.u64();
        break;
      case Type::kAckVec: {
        origin = r.u32();  // sender of the ack vector
        const std::uint32_t count = r.u32();
        ack_vec.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::uint32_t o = r.u32();
          const std::uint64_t cum = r.u64();
          ack_vec.emplace_back(o, cum);
        }
        break;
      }
    }
  });
  switch (type) {
    case Type::kData:
      on_data(origin, seq, std::move(m), wire_copy);
      break;
    case Type::kPass:
      ctx().deliver_up(std::move(m));
      break;
    case Type::kNack:
      on_nack(m.wire_src, origin, nack_seqs);
      break;
    case Type::kHeartbeat:
      on_heartbeat(origin, seq);
      break;
    case Type::kAck:
      on_ack(origin, seq);
      break;
    case Type::kAckVec:
      on_ack_vector(origin, ack_vec);
      break;
  }
}

void ReliableLayer::on_data(std::uint32_t origin, std::uint64_t seq, Message m,
                            const Payload& wire_copy) {
  OriginState& o = origins_[origin];
  o.announced = std::max(o.announced, seq + 1);
  if (o.received(seq)) {
    ++stats_.duplicates_dropped;
    return;
  }
  if (seq == o.contiguous) {
    ++o.contiguous;
    while (!o.sparse.empty() && *o.sparse.begin() == o.contiguous) {
      o.sparse.erase(o.sparse.begin());
      ++o.contiguous;
    }
  } else {
    o.sparse.insert(seq);
  }
  if (cfg_.peer_assist && origin != ctx().self().v) {
    store_[origin].emplace(seq, wire_copy);
  }
  ctx().deliver_up(std::move(m));
}

NodeId ReliableLayer::nack_target(std::uint32_t origin) {
  if (!cfg_.peer_assist) return NodeId{origin};
  // Rotate across the other members so retries reach whoever holds a copy
  // even when the origin is gone.
  const auto& members = ctx().members();
  for (std::size_t tries = 0; tries < members.size(); ++tries) {
    const NodeId candidate = members[nack_rotation_++ % members.size()];
    if (candidate != ctx().self()) return candidate;
  }
  return NodeId{origin};
}

void ReliableLayer::on_nack(NodeId requester, std::uint32_t origin,
                            const std::vector<std::uint64_t>& seqs) {
  const bool own_stream = origin == ctx().self().v;
  if (!own_stream && !cfg_.peer_assist) return;  // stale or misrouted
  for (std::uint64_t seq : seqs) {
    const Payload* copy = nullptr;
    if (own_stream) {
      auto it = sent_buffer_.find(seq);
      if (it != sent_buffer_.end()) copy = &it->second;
    } else {
      auto os = store_.find(origin);
      if (os != store_.end()) {
        auto it = os->second.find(seq);
        if (it != os->second.end()) copy = &it->second;
      }
    }
    if (copy == nullptr) continue;  // collected, or we never had it
    ++stats_.retransmissions;
    tr_->instant(n_retx_, TelemetryTrack::kData, seq);
    ctx().send_down(Message::p2p(requester, *copy));
  }
}

void ReliableLayer::on_heartbeat(std::uint32_t origin, std::uint64_t next_seq) {
  if (origin == ctx().self().v) return;
  origins_[origin].announced = std::max(origins_[origin].announced, next_seq);
}

void ReliableLayer::on_ack(std::uint32_t from, std::uint64_t contiguous) {
  auto& acked = acked_by_[from];
  acked = std::max(acked, contiguous);
  collect_garbage();
}

void ReliableLayer::on_ack_vector(
    std::uint32_t from, const std::vector<std::pair<std::uint32_t, std::uint64_t>>& cums) {
  auto& row = ack_matrix_[from];
  for (const auto& [origin, cum] : cums) {
    auto& cell = row[origin];
    cell = std::max(cell, cum);
    if (origin == ctx().self().v && from != ctx().self().v) {
      auto& acked = acked_by_[from];
      acked = std::max(acked, cum);
    }
    // A peer's contiguous prefix also advertises the stream's horizon:
    // even if the origin is dead and we heard nothing from it, we now know
    // what we are missing and can NACK a surviving peer for it.
    if (origin != ctx().self().v) {
      auto& o = origins_[origin];
      o.announced = std::max(o.announced, cum);
    }
  }
  collect_garbage();
  collect_store_garbage();
}

void ReliableLayer::send_nacks() {
  for (auto& [origin, o] : origins_) {
    if (origin == ctx().self().v) continue;
    std::vector<std::uint64_t> missing;
    for (std::uint64_t s = o.contiguous; s < o.announced && missing.size() < kMaxNackBatch;
         ++s) {
      if (!o.received(s)) missing.push_back(s);
    }
    if (missing.empty()) continue;
    ++stats_.nacks_sent;
    tr_->instant(n_nack_, TelemetryTrack::kData, missing.size());
    Message m = Message::p2p(nack_target(origin), {});
    const std::uint32_t stream = origin;
    m.push_header([&](Writer& w) {
      w.u8(static_cast<std::uint8_t>(Type::kNack));
      w.u32(stream);
      w.u32(static_cast<std::uint32_t>(missing.size()));
      for (std::uint64_t s : missing) w.u64(s);
    });
    ctx().send_down(std::move(m));
  }
  ctx().set_timer(cfg_.nack_interval, [this] { send_nacks(); });
}

void ReliableLayer::send_heartbeat() {
  if (next_seq_ > 0) {
    Message m = Message::group({});
    const std::uint32_t origin = ctx().self().v;
    const std::uint64_t next = next_seq_;
    m.push_header([&](Writer& w) {
      w.u8(static_cast<std::uint8_t>(Type::kHeartbeat));
      w.u32(origin);
      w.u64(next);
    });
    ctx().send_down(std::move(m));
  }
  ctx().set_timer(cfg_.heartbeat_interval, [this] { send_heartbeat(); });
}

void ReliableLayer::send_acks() {
  if (cfg_.peer_assist) {
    // Multicast the full per-origin contiguous vector: stability becomes
    // common knowledge, enabling store garbage collection everywhere.
    Message m = Message::group({});
    const std::uint32_t self = ctx().self().v;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> cums;
    cums.emplace_back(self, next_seq_);  // our own stream, trivially held
    for (const auto& [origin, o] : origins_) {
      if (origin != self) cums.emplace_back(origin, o.contiguous);
    }
    m.push_header([&](Writer& w) {
      w.u8(static_cast<std::uint8_t>(Type::kAckVec));
      w.u32(self);
      w.u32(static_cast<std::uint32_t>(cums.size()));
      for (const auto& [origin, cum] : cums) {
        w.u32(origin);
        w.u64(cum);
      }
    });
    ctx().send_down(std::move(m));
  } else {
    for (const auto& [origin, o] : origins_) {
      if (origin == ctx().self().v) continue;
      Message m = Message::p2p(NodeId{origin}, {});
      const std::uint32_t self = ctx().self().v;
      const std::uint64_t contiguous = o.contiguous;
      m.push_header([&](Writer& w) {
        w.u8(static_cast<std::uint8_t>(Type::kAck));
        w.u32(self);
        w.u64(contiguous);
      });
      ctx().send_down(std::move(m));
    }
  }
  ctx().set_timer(cfg_.ack_interval, [this] { send_acks(); });
}

void ReliableLayer::collect_garbage() {
  // A copy may be dropped once every *other* member has acknowledged a
  // contiguous prefix covering it (we trivially have our own messages).
  if (acked_by_.size() + 1 < ctx().member_count()) return;
  std::uint64_t min_acked = next_seq_;
  for (const auto& [member, acked] : acked_by_) min_acked = std::min(min_acked, acked);
  while (!sent_buffer_.empty() && sent_buffer_.begin()->first < min_acked) {
    sent_buffer_.erase(sent_buffer_.begin());
  }
}

void ReliableLayer::collect_store_garbage() {
  // Drop a peer copy of origin o's message once every member's ack row
  // covers it. Members whose row we have not seen yet block collection.
  if (ack_matrix_.size() < ctx().member_count()) return;
  for (auto& [origin, copies] : store_) {
    std::uint64_t min_cum = ~std::uint64_t{0};
    for (const auto& member : ctx().members()) {
      const auto row = ack_matrix_.find(member.v);
      if (row == ack_matrix_.end()) return;
      const auto cell = row->second.find(origin);
      min_cum = std::min(min_cum, cell == row->second.end() ? 0 : cell->second);
    }
    while (!copies.empty() && copies.begin()->first < min_cum) {
      copies.erase(copies.begin());
    }
  }
}

ReliableLayer::Stats ReliableLayer::stats() const {
  Stats s = stats_;
  s.buffered_copies = sent_buffer_.size();
  for (const auto& [origin, copies] : store_) s.buffered_copies += copies.size();
  return s;
}

}  // namespace msw
