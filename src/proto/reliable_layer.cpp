#include "proto/reliable_layer.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "util/log.hpp"

namespace msw {
namespace {

enum class Type : std::uint8_t {
  kData = 0,
  kPass = 1,
  kNack = 2,  // legacy per-sequence list
  kHeartbeat = 3,
  kAck = 4,
  kAckVec = 5,      // legacy fixed-width full vector
  kNackRange = 6,   // range-coded, varint-delta
  kAckVecDelta = 7, // delta/full snapshot, varint fields
};

/// Cap on missing sequences requested per NACK round, to bound
/// retransmission bursts after long partitions.
constexpr std::size_t kMaxNackBatch = 64;

/// The range-NACK and delta-ack-vector frames carry a u16 entry count, so
/// one frame holds at most this many entries; send_acks splits larger
/// vectors across frames and the encoders refuse (rather than truncate)
/// anything bigger.
constexpr std::size_t kMaxFrameEntries = 0xFFFF;

}  // namespace

namespace relwire {

void encode_nack(Writer& w, const NackFrame& f) {
  if (f.ranges.size() > kMaxFrameEntries) throw DecodeError("nack: too many ranges for one frame");
  w.u32(f.origin);
  w.u16(static_cast<std::uint16_t>(f.ranges.size()));
  std::uint64_t prev_end = 0;
  for (const SeqRange& r : f.ranges) {
    w.varint(r.begin - prev_end);
    w.varint(r.size() - 1);
    prev_end = r.end;
  }
}

NackFrame decode_nack(Reader& r) {
  NackFrame f;
  f.origin = r.u32();
  const std::uint16_t count = r.u16();
  f.ranges.reserve(count);
  std::uint64_t prev_end = 0;
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::uint64_t begin = prev_end + r.varint();
    const std::uint64_t end = begin + r.varint() + 1;
    if (end <= begin || begin < prev_end) throw DecodeError("nack range overflow");
    f.ranges.push_back({begin, end});
    prev_end = end;
  }
  return f;
}

void encode_ack_vec(Writer& w, const AckVecFrame& f) {
  if (f.cums.size() > kMaxFrameEntries) {
    throw DecodeError("ack vector: too many entries for one frame");
  }
  w.u32(f.sender);
  w.u8(f.full ? 1 : 0);
  w.u16(static_cast<std::uint16_t>(f.cums.size()));
  std::uint64_t prev_origin = 0;
  bool first = true;
  for (const auto& [origin, cum] : f.cums) {
    w.varint(first ? origin : origin - prev_origin - 1);
    w.varint(cum);
    prev_origin = origin;
    first = false;
  }
}

AckVecFrame decode_ack_vec(Reader& r) {
  AckVecFrame f;
  f.sender = r.u32();
  const std::uint8_t flags = r.u8();
  if (flags > 1) throw DecodeError("ack vector: unknown flags");
  f.full = flags == 1;
  const std::uint16_t count = r.u16();
  f.cums.reserve(count);
  std::uint64_t prev_origin = 0;
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::uint64_t gap = r.varint();
    const std::uint64_t origin = f.cums.empty() ? gap : prev_origin + gap + 1;
    if (origin > ~std::uint32_t{0}) throw DecodeError("ack vector: origin overflow");
    f.cums.emplace_back(static_cast<std::uint32_t>(origin), r.varint());
    prev_origin = origin;
  }
  return f;
}

}  // namespace relwire

void ReliableLayer::start() {
  tr_ = &ctx().tracer();
  n_nack_ = tr_->intern("rel.nack");
  n_retx_ = tr_->intern("rel.retransmit");
  n_refill_ = tr_->intern("rel.self_refill");
  if (MetricsRegistry* reg = ctx().metrics()) {
    reg->attach_counter("rel.nacks_sent", &stats_.nacks_sent);
    reg->attach_counter("rel.retransmissions", &stats_.retransmissions);
    reg->attach_counter("rel.self_refills", &stats_.self_refills);
    reg->attach_counter("rel.duplicates_dropped", &stats_.duplicates_dropped);
    reg->attach_counter("rel.nack_bytes_sent", &stats_.nack_bytes_sent);
    reg->attach_counter("rel.nack_entries_sent", &stats_.nack_entries_sent);
    reg->attach_counter("rel.ack_bytes_sent", &stats_.ack_bytes_sent);
    reg->attach_counter("rel.ack_entries_sent", &stats_.ack_entries_sent);
    reg->attach_counter("rel.members_evicted", &stats_.members_evicted);
    reg->attach_counter("rel.buffer_evictions", &stats_.buffer_evictions);
    reg->attach_counter("rel.decode_drops", &stats_.decode_drops);
  }
  quorum_baseline_ = ctx().now();
  ctx().set_timer(cfg_.nack_interval, [this] { send_nacks(); });
  ctx().set_timer(cfg_.heartbeat_interval, [this] { send_heartbeat(); });
  ctx().set_timer(cfg_.ack_interval, [this] { ack_tick(); });
}

void ReliableLayer::down(Message m) {
  if (m.is_p2p()) {
    m.push_header([](Writer& w) { w.u8(static_cast<std::uint8_t>(Type::kPass)); });
    ctx().send_down(std::move(m));
    return;
  }
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t origin = ctx().self().v;
  m.push_header([&](Writer& w) {
    w.u8(static_cast<std::uint8_t>(Type::kData));
    w.u32(origin);
    w.u64(seq);
  });
  if (sent_buffer_.empty()) {
    // Members never heard from get a full horizon from the moment there is
    // something for them to ack, not from layer start — otherwise a burst
    // after a long quiet period would GC instantly under everyone's nose.
    // Members evicted before the burst get the same fresh horizon: a fully
    // idle group exchanges no frames (no data means no heartbeats, and the
    // p2p ack path has no origins to ack), so healthy members look silent
    // and evict each other. Without re-admission the first multicast after
    // a quiet period faces an *empty* GC quorum and is collected at the
    // next ack tick, racing — and silently losing to — a receiver whose
    // copy was dropped on the wire and who has not NACKed yet.
    quorum_baseline_ = std::max(quorum_baseline_, ctx().now());
    evicted_.clear();
  }
  sent_buffer_.emplace(seq, m.data);  // shares the buffer for retransmission
  if (cfg_.max_sent_buffer > 0) {
    while (sent_buffer_.size() > cfg_.max_sent_buffer) {
      sent_buffer_.erase(sent_buffer_.begin());
      ++stats_.buffer_evictions;
    }
  }
  ctx().send_down(std::move(m));
}

void ReliableLayer::down_batch(MessageBatch b) {
  for (const Message& m : b) {
    if (m.is_p2p()) {
      Layer::down_batch(std::move(b));  // mixed run: per-message path
      return;
    }
  }
  // Pure group run: flat header encode, per-message retention bookkeeping,
  // one batched send below.
  const std::uint32_t origin = ctx().self().v;
  constexpr std::size_t kHdr = 13;  // u8 type + u32 origin + u64 seq
  Bytes& scratch = ctx().scratch();
  Writer w(scratch);
  w.reserve(kHdr * b.size());
  const std::uint64_t first_seq = next_seq_;
  next_seq_ += b.size();
  for (std::size_t i = 0; i < b.size(); ++i) {
    w.u8(static_cast<std::uint8_t>(Type::kData));
    w.u32(origin);
    w.u64(first_seq + i);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    Message& m = b[i];
    m.push_header_raw(std::span<const Byte>(scratch.data() + i * kHdr, kHdr));
    if (sent_buffer_.empty()) {
      // Same re-admission rule as down(): the first message of a burst
      // refreshes the GC quorum (see the comment there).
      quorum_baseline_ = std::max(quorum_baseline_, ctx().now());
      evicted_.clear();
    }
    sent_buffer_.emplace(first_seq + i, m.data);
    if (cfg_.max_sent_buffer > 0) {
      while (sent_buffer_.size() > cfg_.max_sent_buffer) {
        sent_buffer_.erase(sent_buffer_.begin());
        ++stats_.buffer_evictions;
      }
    }
  }
  ctx().send_down(std::move(b));
}

void ReliableLayer::up_batch(MessageBatch b) {
  MessageBatch out;
  for (Message& m : b) up_impl(std::move(m), &out);
  ctx().deliver_up(std::move(out));
}

void ReliableLayer::up(Message m) { up_impl(std::move(m), nullptr); }

void ReliableLayer::up_impl(Message m, MessageBatch* out) {
  last_heard_[m.wire_src.v] = ctx().now();
  evicted_.erase(m.wire_src.v);  // any sign of life rejoins the GC quorum

  // peer_assist needs the wire form (header included) to store for peers;
  // grabbing it before the pops below is free — the Payload shares the
  // receive buffer and keeps its own (longer) logical view of it.
  Payload wire_copy;
  if (cfg_.peer_assist) wire_copy = m.data;

  Type type{};
  std::uint32_t origin = 0;
  std::uint64_t seq = 0;
  std::vector<SeqRange> nack_ranges;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> ack_vec;
  try {
    m.pop_header([&](Reader& r) {
      type = static_cast<Type>(r.u8());
      switch (type) {
        case Type::kData:
          origin = r.u32();
          seq = r.u64();
          break;
        case Type::kPass:
          break;
        case Type::kNack: {
          origin = r.u32();
          const std::uint32_t count = r.u32();
          // The count is attacker-shaped until checked against the bytes
          // actually present (8 per entry) — reserving first would turn a
          // malformed frame into a giant allocation instead of a drop.
          if (count > r.remaining() / 8) throw DecodeError("nack: count exceeds frame");
          nack_ranges.reserve(count);
          for (std::uint32_t i = 0; i < count; ++i) {
            const std::uint64_t s = r.u64();
            nack_ranges.push_back({s, s + 1});
          }
          break;
        }
        case Type::kNackRange: {
          if (cfg_.legacy_control) throw DecodeError("unknown frame type (legacy decoder)");
          relwire::NackFrame f = relwire::decode_nack(r);
          origin = f.origin;
          nack_ranges = std::move(f.ranges);
          break;
        }
        case Type::kHeartbeat:
          origin = r.u32();
          seq = r.u64();
          break;
        case Type::kAck:
          origin = r.u32();
          seq = r.u64();
          break;
        case Type::kAckVec: {
          origin = r.u32();  // sender of the ack vector
          const std::uint32_t count = r.u32();
          // Same untrusted-count check as kNack; entries are u32+u64.
          if (count > r.remaining() / 12) throw DecodeError("ack vector: count exceeds frame");
          ack_vec.reserve(count);
          for (std::uint32_t i = 0; i < count; ++i) {
            const std::uint32_t o = r.u32();
            const std::uint64_t cum = r.u64();
            ack_vec.emplace_back(o, cum);
          }
          break;
        }
        case Type::kAckVecDelta: {
          if (cfg_.legacy_control) throw DecodeError("unknown frame type (legacy decoder)");
          relwire::AckVecFrame f = relwire::decode_ack_vec(r);
          origin = f.sender;
          ack_vec = std::move(f.cums);
          break;
        }
        default:
          throw DecodeError("unknown reliable frame type");
      }
    });
  } catch (const DecodeError&) {
    // Truncated, malformed, or from a newer protocol version than this
    // decoder understands: drop the frame, never misparse it.
    ++stats_.decode_drops;
    return;
  }
  switch (type) {
    case Type::kData:
      on_data(origin, seq, std::move(m), wire_copy, out);
      break;
    case Type::kPass:
      if (out != nullptr) {
        out->push_back(std::move(m));
      } else {
        ctx().deliver_up(std::move(m));
      }
      break;
    case Type::kNack:
    case Type::kNackRange:
      // Retransmissions leave here; flush queued deliveries first so wire
      // emissions interleave exactly as in per-message execution.
      if (out != nullptr && !out->empty()) {
        ctx().deliver_up(std::move(*out));
        *out = MessageBatch{};
      }
      on_nack(m.wire_src, origin, nack_ranges);
      break;
    case Type::kHeartbeat:
      on_heartbeat(origin, seq);
      break;
    case Type::kAck:
      on_ack(origin, seq);
      break;
    case Type::kAckVec:
    case Type::kAckVecDelta:
      on_ack_vector(origin, ack_vec);
      break;
  }
}

void ReliableLayer::on_data(std::uint32_t origin, std::uint64_t seq, Message m,
                            const Payload& wire_copy, MessageBatch* out) {
  OriginState& o = origins_[origin];
  o.announced = std::max(o.announced, seq + 1);
  if (!o.track.insert(seq)) {
    ++stats_.duplicates_dropped;
    return;
  }
  if (cfg_.peer_assist && origin != ctx().self().v) {
    auto& copies = store_[origin];
    copies.emplace(seq, wire_copy);
    if (cfg_.max_store_per_origin > 0) {
      while (copies.size() > cfg_.max_store_per_origin) {
        copies.erase(copies.begin());
        ++stats_.buffer_evictions;
      }
    }
  }
  if (out != nullptr) {
    out->push_back(std::move(m));
  } else {
    ctx().deliver_up(std::move(m));
  }
}

NodeId ReliableLayer::nack_target(std::uint32_t origin) {
  if (!cfg_.peer_assist) return NodeId{origin};
  // Rotate across the other members so retries reach whoever holds a copy
  // even when the origin is gone.
  const auto& members = ctx().members();
  for (std::size_t tries = 0; tries < members.size(); ++tries) {
    const NodeId candidate = members[nack_rotation_++ % members.size()];
    if (candidate != ctx().self()) return candidate;
  }
  return NodeId{origin};
}

void ReliableLayer::on_nack(NodeId requester, std::uint32_t origin,
                            const std::vector<SeqRange>& ranges) {
  const bool own_stream = origin == ctx().self().v;
  if (!own_stream && !cfg_.peer_assist) return;  // stale or misrouted
  const std::map<std::uint64_t, Payload>* buf = nullptr;
  if (own_stream) {
    buf = &sent_buffer_;
  } else {
    auto os = store_.find(origin);
    if (os != store_.end()) buf = &os->second;
  }
  if (buf == nullptr) return;  // collected, or we never had it
  for (const SeqRange& rg : ranges) {
    for (auto it = buf->lower_bound(rg.begin); it != buf->end() && it->first < rg.end; ++it) {
      ++stats_.retransmissions;
      tr_->instant(n_retx_, TelemetryTrack::kData, it->first);
      ctx().send_down(Message::p2p(requester, it->second));
    }
  }
}

void ReliableLayer::on_heartbeat(std::uint32_t origin, std::uint64_t next_seq) {
  if (origin == ctx().self().v) return;
  origins_[origin].announced = std::max(origins_[origin].announced, next_seq);
}

void ReliableLayer::on_ack(std::uint32_t from, std::uint64_t contiguous) {
  auto& acked = acked_by_[from];
  acked = std::max(acked, contiguous);
  collect_garbage();
}

void ReliableLayer::on_ack_vector(
    std::uint32_t from, const std::vector<std::pair<std::uint32_t, std::uint64_t>>& cums) {
  auto& row = ack_matrix_[from];
  for (const auto& [origin, cum] : cums) {
    auto& cell = row[origin];
    cell = std::max(cell, cum);
    if (origin == ctx().self().v && from != ctx().self().v) {
      auto& acked = acked_by_[from];
      acked = std::max(acked, cum);
    }
    // A peer's contiguous prefix also advertises the stream's horizon:
    // even if the origin is dead and we heard nothing from it, we now know
    // what we are missing and can NACK a surviving peer for it.
    if (origin != ctx().self().v) {
      auto& o = origins_[origin];
      o.announced = std::max(o.announced, cum);
    }
  }
  collect_garbage();
  collect_store_garbage();
}

void ReliableLayer::refill_own_gaps() {
  // A crash drops a node's own in-flight loopback copies along with
  // everything else, leaving gaps in its *own* stream that no peer can fill
  // for it: send_nacks skips the self origin (NACKing yourself over the
  // wire is a no-op while you are the one holding the copy). Re-deliver the
  // missing copies straight from sent_buffer_ — the local analogue of a
  // retransmission. Without this, every causal successor of the lost sends
  // (our own later messages included) blocks above us forever.
  //
  // Only sequences sent before the *previous* NACK tick are eligible, so a
  // copy whose loopback delivery is merely in flight (microseconds) is
  // never raced: in a fault-free run this path never fires.
  const std::uint64_t bound = refill_bound_;
  refill_bound_ = next_seq_;
  if (bound == 0) return;
  OriginState& own = origins_[ctx().self().v];
  if (own.track.contiguous() >= bound) return;
  const std::vector<SeqRange> missing = own.track.missing_ranges(bound, kMaxNackBatch);
  std::vector<std::pair<std::uint64_t, Payload>> copies;
  for (const SeqRange& rg : missing) {
    for (auto it = sent_buffer_.lower_bound(rg.begin);
         it != sent_buffer_.end() && it->first < rg.end; ++it) {
      copies.emplace_back(it->first, it->second);
    }
  }
  for (auto& [seq, p] : copies) {
    ++stats_.self_refills;
    tr_->instant(n_refill_, TelemetryTrack::kData, seq);
    Message m;
    m.data = std::move(p);
    m.wire_src = ctx().self();
    up_impl(std::move(m), nullptr);
  }
}

void ReliableLayer::send_nacks() {
  refill_own_gaps();
  for (auto& [origin, o] : origins_) {
    if (origin == ctx().self().v) continue;
    const std::vector<SeqRange> missing = o.track.missing_ranges(o.announced, kMaxNackBatch);
    if (missing.empty()) continue;
    std::uint64_t missing_seqs = 0;
    for (const SeqRange& r : missing) missing_seqs += r.size();
    ++stats_.nacks_sent;
    tr_->instant(n_nack_, TelemetryTrack::kData, missing_seqs);
    Message m = Message::p2p(nack_target(origin), {});
    if (cfg_.legacy_control) {
      const std::uint32_t stream = origin;
      m.push_header([&](Writer& w) {
        w.u8(static_cast<std::uint8_t>(Type::kNack));
        w.u32(stream);
        w.u32(static_cast<std::uint32_t>(missing_seqs));
        for (const SeqRange& r : missing) {
          for (std::uint64_t s = r.begin; s < r.end; ++s) w.u64(s);
        }
      });
      stats_.nack_entries_sent += missing_seqs;
    } else {
      relwire::NackFrame frame{origin, missing};
      m.push_header([&](Writer& w) {
        w.u8(static_cast<std::uint8_t>(Type::kNackRange));
        relwire::encode_nack(w, frame);
      });
      stats_.nack_entries_sent += missing.size();
    }
    stats_.nack_bytes_sent += m.size();
    ctx().send_down(std::move(m));
  }
  ctx().set_timer(cfg_.nack_interval, [this] { send_nacks(); });
}

void ReliableLayer::send_heartbeat() {
  if (next_seq_ > 0) {
    Message m = Message::group({});
    const std::uint32_t origin = ctx().self().v;
    const std::uint64_t next = next_seq_;
    m.push_header([&](Writer& w) {
      w.u8(static_cast<std::uint8_t>(Type::kHeartbeat));
      w.u32(origin);
      w.u64(next);
    });
    ctx().send_down(std::move(m));
  }
  ctx().set_timer(cfg_.heartbeat_interval, [this] { send_heartbeat(); });
}

void ReliableLayer::ack_tick() {
  update_evictions();
  send_acks();
  collect_garbage();
  collect_store_garbage();
  ctx().set_timer(cfg_.ack_interval, [this] { ack_tick(); });
}

void ReliableLayer::send_acks() {
  if (cfg_.peer_assist) {
    // Multicast the per-origin contiguous vector: stability becomes common
    // knowledge, enabling store garbage collection everywhere. Ordinarily
    // only origins whose prefix advanced since the last tick are included
    // (delta); every full_ack_every-th tick sends the full snapshot so a
    // member that missed deltas converges.
    const std::uint32_t self = ctx().self().v;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> cums;
    cums.emplace_back(self, next_seq_);  // our own stream, trivially held
    for (const auto& [origin, o] : origins_) {
      if (origin != self) cums.emplace_back(origin, o.track.contiguous());
    }
    std::sort(cums.begin(), cums.end());
    const bool full = cfg_.legacy_control || cfg_.full_ack_every == 0 ||
                      ack_round_ % cfg_.full_ack_every == 0;
    ++ack_round_;
    if (!full) {
      std::erase_if(cums, [&](const auto& e) {
        const auto it = last_ack_sent_.find(e.first);
        return it != last_ack_sent_.end() && it->second >= e.second;
      });
      if (cums.empty()) return;  // nothing advanced; peers are current
    }
    for (const auto& [origin, cum] : cums) last_ack_sent_[origin] = cum;
    if (cfg_.legacy_control) {
      Message m = Message::group({});
      m.push_header([&](Writer& w) {
        w.u8(static_cast<std::uint8_t>(Type::kAckVec));
        w.u32(self);
        w.u32(static_cast<std::uint32_t>(cums.size()));
        for (const auto& [origin, cum] : cums) {
          w.u32(origin);
          w.u64(cum);
        }
      });
      stats_.ack_bytes_sent += m.size();
      stats_.ack_entries_sent += cums.size();
      ++stats_.ack_frames_sent;
      ctx().send_down(std::move(m));
    } else {
      // The delta frame's u16 count caps one frame at kMaxFrameEntries
      // origins; bigger vectors split across frames rather than truncate.
      // Receivers merge cumulative acks by monotone max, so the frame
      // boundary is invisible to them. max_ack_entries_per_frame lowers the
      // cap so tests can exercise the split without 65k origins.
      const std::size_t cap = cfg_.max_ack_entries_per_frame == 0
                                  ? kMaxFrameEntries
                                  : std::min(cfg_.max_ack_entries_per_frame, kMaxFrameEntries);
      for (std::size_t base = 0; base < cums.size(); base += cap) {
        const std::size_t n = std::min(cap, cums.size() - base);
        relwire::AckVecFrame frame{self, full,
                                   {cums.begin() + static_cast<std::ptrdiff_t>(base),
                                    cums.begin() + static_cast<std::ptrdiff_t>(base + n)}};
        Message m = Message::group({});
        m.push_header([&](Writer& w) {
          w.u8(static_cast<std::uint8_t>(Type::kAckVecDelta));
          relwire::encode_ack_vec(w, frame);
        });
        stats_.ack_bytes_sent += m.size();
        stats_.ack_entries_sent += n;
        ++stats_.ack_frames_sent;
        ctx().send_down(std::move(m));
      }
    }
  } else {
    for (const auto& [origin, o] : origins_) {
      if (origin == ctx().self().v) continue;
      Message m = Message::p2p(NodeId{origin}, {});
      const std::uint32_t self = ctx().self().v;
      const std::uint64_t contiguous = o.track.contiguous();
      m.push_header([&](Writer& w) {
        w.u8(static_cast<std::uint8_t>(Type::kAck));
        w.u32(self);
        w.u64(contiguous);
      });
      stats_.ack_bytes_sent += m.size();
      ++stats_.ack_entries_sent;
      ctx().send_down(std::move(m));
    }
  }
}

void ReliableLayer::update_evictions() {
  if (cfg_.eviction_horizon == 0) return;
  const Time now = ctx().now();
  for (const NodeId& member : ctx().members()) {
    if (member == ctx().self() || evicted_.count(member.v) > 0) continue;
    const auto heard = last_heard_.find(member.v);
    const Time last = heard != last_heard_.end() ? std::max(heard->second, quorum_baseline_)
                                                 : quorum_baseline_;
    if (now - last > cfg_.eviction_horizon) {
      evicted_.insert(member.v);
      ++stats_.members_evicted;
      MSW_LOG(kInfo, "reliable", now)
          << "member " << member.v << " idle " << (now - last) << " us, excluded from GC quorum";
    }
  }
}

bool ReliableLayer::counts_for_gc(std::uint32_t member) const {
  return evicted_.count(member) == 0;
}

void ReliableLayer::collect_garbage() {
  // A copy may be dropped once every counted member has acknowledged a
  // contiguous prefix covering it. A member we never heard from counts as
  // acked=0 — it blocks collection exactly until the eviction horizon
  // removes it from the quorum. Our own *delivery* counts too: holding the
  // bytes is not the same as having delivered them — a crash can drop our
  // loopback copies, and refill_own_gaps re-delivers from this buffer, so
  // collection must wait for our own contiguous prefix as well.
  std::uint64_t min_acked = next_seq_;
  if (const auto own = origins_.find(ctx().self().v); own != origins_.end()) {
    min_acked = std::min(min_acked, own->second.track.contiguous());
  } else if (next_seq_ > 0) {
    min_acked = 0;  // sent, but nothing self-delivered yet
  }
  for (const NodeId& member : ctx().members()) {
    if (member == ctx().self() || !counts_for_gc(member.v)) continue;
    const auto it = acked_by_.find(member.v);
    min_acked = std::min(min_acked, it == acked_by_.end() ? 0 : it->second);
  }
  while (!sent_buffer_.empty() && sent_buffer_.begin()->first < min_acked) {
    sent_buffer_.erase(sent_buffer_.begin());
  }
}

void ReliableLayer::collect_store_garbage() {
  // Drop a peer copy of origin o's message once every counted member's ack
  // row covers it. A missing row or cell reads as 0 (blocks collection for
  // that origin) — consistently for both — until the member is evicted, at
  // which point it stops counting entirely.
  for (auto& [origin, copies] : store_) {
    std::uint64_t min_cum = ~std::uint64_t{0};
    for (const NodeId& member : ctx().members()) {
      if (member != ctx().self() && !counts_for_gc(member.v)) continue;
      const auto row = ack_matrix_.find(member.v);
      if (row == ack_matrix_.end()) {
        min_cum = 0;
        break;
      }
      const auto cell = row->second.find(origin);
      min_cum = std::min(min_cum, cell == row->second.end() ? 0 : cell->second);
    }
    while (!copies.empty() && copies.begin()->first < min_cum) {
      copies.erase(copies.begin());
    }
  }
}

ReliableLayer::Stats ReliableLayer::stats() const {
  Stats s = stats_;
  s.buffered_copies = sent_buffer_.size();
  for (const auto& [origin, copies] : store_) s.buffered_copies += copies.size();
  return s;
}

}  // namespace msw
