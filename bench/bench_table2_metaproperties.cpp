// E2 — Table 2: which properties satisfy which meta-properties?
//
// Re-derives the paper's classification mechanically: for every (property,
// meta-property) pair the checker searches for a counterexample to
// preservation over a generated corpus of property-satisfying traces.
// 'Y' = no counterexample found; 'n' = refuted, and the witness pair is
// printed below the table.
#include <cstdio>

#include "bench_util.hpp"
#include "trace/generators.hpp"
#include "trace/meta.hpp"

namespace msw::bench {
namespace {

int run() {
  title("Table 2 — which properties satisfy which meta-properties?");
  Rng rng(2026);
  const auto corpus = standard_corpus(rng, 12, 4);
  std::printf("corpus: %zu generated traces over 4 processes\n\n", corpus.size());

  const auto props = standard_properties(4);
  const auto matrix = compute_meta_matrix(props, corpus, rng, 32);
  const auto columns = meta_matrix_columns();

  std::printf("%-22s", "");
  for (const auto& c : columns) std::printf(" %-13.13s", std::string(c).c_str());
  std::printf("\n");
  rule(106);
  for (const auto& row : matrix) {
    std::printf("%-22s", row.property.c_str());
    for (const auto& res : row.results) {
      std::printf(" %-13c", verdict_mark(res.verdict));
    }
    std::printf("\n");
  }
  rule(106);
  std::printf(
      "Y = preservation held over every sampled pair;  n = refuted by an explicit\n"
      "counterexample;  ? = vacuous (no corpus support).\n\n"
      "Paper-explicit entries reproduced: Reliability not Safe (5.1); Prioritized\n"
      "Delivery not Asynchronous (5.2); Amoeba neither Delayable (5.3) nor Send\n"
      "Enabled (5.4); Virtual Synchrony not Memoryless (6.1); No Replay memoryless\n"
      "but not Composable (6.2). Properties satisfying all six are preserved by the\n"
      "switching protocol (section 6.3).\n");

  // Print one witness per refuted cell.
  std::printf("\nCounterexample witnesses (first refutation per cell):\n");
  for (const auto& row : matrix) {
    for (std::size_t c = 0; c < row.results.size(); ++c) {
      const auto& res = row.results[c];
      if (res.verdict != MetaVerdict::kRefuted) continue;
      std::printf("\n-- %s / %s --\n", row.property.c_str(),
                  std::string(columns[c]).c_str());
      std::printf("tr_below (property holds):\n%s", to_string(*res.below).c_str());
      std::printf("tr_above (property violated):\n%s", to_string(*res.above).c_str());
    }
  }

  // Summarize the switch-safe class.
  std::printf("\nswitch-safe class (all six meta-properties):");
  for (const auto& row : matrix) {
    bool all = true;
    for (const auto& res : row.results) {
      if (res.verdict != MetaVerdict::kSupported) all = false;
    }
    if (all) std::printf(" [%s]", row.property.c_str());
  }
  std::printf("\n");

  // Extension row: Causal Order, analyzed with the same machinery.
  std::printf("\nExtension (beyond the paper's Table 1/2):\n");
  {
    CausalOrderProperty causal;
    const auto relations = standard_relations();
    std::printf("%-22s", "Causal Order");
    for (const auto& rel : relations) {
      const auto res = check_preservation(causal, *rel, corpus, rng, 32);
      std::printf(" %-13c", verdict_mark(res.verdict));
    }
    const auto comp = check_composable(causal, corpus, rng);
    std::printf(" %-13c\n", verdict_mark(comp.verdict));
    std::printf(
        "Causal Order fails Delayable (delaying a delivery past a send manufactures\n"
        "causality), so it is outside the switch-safe class — yet, like Reliability,\n"
        "the concrete SP preserves it operationally: the drain means no new-protocol\n"
        "message is delivered before every old-protocol message (tests/test_causal).\n");
  }
  return 0;
}

}  // namespace
}  // namespace msw::bench

int main() { return msw::bench::run(); }
