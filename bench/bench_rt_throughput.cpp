// Real-transport throughput: msgs/sec/core for the reliable-FIFO stack
// over loopback UDP (or the threaded in-process backend with --loopback).
//
// Topology: G groups of n nodes, one group per executor shard — the
// runtime's unit of parallelism. Every node multicasts rounds of small
// payloads with a bounded in-flight window (the pacer waits when the gap
// between sends and deliveries exceeds the window, so the kernel socket
// buffers aren't asked to absorb the whole run at once). Wall time covers
// first send to last delivery; a delivery is one application-level
// message arriving at one member, so
//     deliveries/sec = unique msgs/sec * n.
// msgs/sec/core divides unique multicasts completed per second by the
// number of worker cores (G shards), the honest per-core figure for a
// medium where CPU time is real rather than simulated.
//
//   ./bench_rt_throughput [--json F] [--loopback] [--groups G] [--scale X]
//                         [--stats-interval MS]
//
// Emits BENCH_rt.json (or F) with one row per n in {2, 8, 32}, including
// end-to-end latency percentiles (p50/p99/p999 µs) from the rt stats plane.
// --stats-interval renders the live dashboard on stderr during each cell.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "rt/loopback_transport.hpp"
#include "rt/rt_group.hpp"
#include "rt/stats/publisher.hpp"
#include "rt/stats/stats_plane.hpp"
#include "rt/udp_transport.hpp"
#include "switch/hybrid.hpp"

using namespace msw;

namespace {

struct Row {
  std::size_t n = 0;
  std::size_t groups = 0;
  std::uint64_t unique_msgs = 0;   // multicasts completed, all groups
  std::uint64_t deliveries = 0;    // app-level deliveries, all groups
  double wall_s = 0;
  double cpu_s = 0;                 // process CPU (user+sys, all threads)
  double msgs_per_sec = 0;          // unique msgs/sec, all cores
  double msgs_per_sec_per_core = 0; // unique msgs/sec / worker shards
  double msgs_per_cpu_sec = 0;      // unique msgs per CPU-second burned
  double deliveries_per_sec = 0;
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_dropped = 0;
  // End-to-end wall latency (send stamp -> delivery, µs), merged over all
  // groups. Zero when the build has MSW_RT_STATS=OFF.
  std::uint64_t lat_count = 0;
  double lat_p50_us = 0;
  double lat_p99_us = 0;
  double lat_p999_us = 0;
};

Row run_one(std::size_t n, std::size_t groups, std::size_t rounds, bool loopback,
            long stats_interval_ms) {
  Executor ex(groups);
  std::unique_ptr<ThreadedTransport> transport;
  if (loopback) {
    transport = std::make_unique<LoopbackTransport>(ex);
  } else {
    transport = std::make_unique<UdpTransport>(ex);
  }
  RtStatsPlane stats(ex, transport.get());

  std::vector<std::unique_ptr<RtGroup>> gs;
  gs.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    gs.push_back(std::make_unique<RtGroup>(*transport, n, make_reliable_fifo_factory(), g,
                                           /*capture_trace=*/false, /*hub=*/nullptr,
                                           /*seed=*/0x5eed0000 + g));
    stats.attach_group(*gs.back(), "g" + std::to_string(g));
  }
  ex.start();
  stats.start();
  for (auto& g : gs) g->start();

  StatsPublisherConfig pub_cfg;
  pub_cfg.interval = (stats_interval_ms > 0 ? stats_interval_ms : 500) * kMillisecond;
  pub_cfg.dashboard = stats_interval_ms > 0;
  StatsPublisher publisher(stats, pub_cfg);
  if (pub_cfg.dashboard) publisher.start();

  const Bytes body{Byte{0xab}, Byte{0xcd}, Byte{0xef}, Byte{0x01},
                   Byte{0x23}, Byte{0x45}, Byte{0x67}, Byte{0x89}};
  const std::uint64_t expect_deliveries = std::uint64_t{groups} * n * n * rounds;
  // In-flight cap: at most this many undelivered app-message copies before
  // the pacer waits. Sized to keep socket buffers comfortable at n=32.
  const std::uint64_t window = std::uint64_t{groups} * n * 2048;

  // Process CPU (all threads) alongside wall: the wall figure is hostage
  // to scheduler luck on shared runners, while CPU-seconds per message is
  // stable under preemption — it is what the stats-overhead gate compares.
  const auto cpu_of = [] {
    rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    const auto tv = [](const timeval& t) {
      return static_cast<double>(t.tv_sec) + static_cast<double>(t.tv_usec) * 1e-6;
    };
    return tv(ru.ru_utime) + tv(ru.ru_stime);
  };
  const double cpu0 = cpu_of();
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t sent_copies = 0;  // sends * n so far
  for (std::size_t r = 0; r < rounds; ++r) {
    for (auto& g : gs) {
      for (std::size_t i = 0; i < n; ++i) g->send(i, body);
    }
    sent_copies += std::uint64_t{groups} * n * n;
    if ((r & 15u) == 15u) {
      for (;;) {
        std::uint64_t delivered = 0;
        for (auto& g : gs) delivered += g->total_delivered();
        if (sent_copies - delivered < window) break;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  }
  std::uint64_t delivered = 0;
  for (int spin = 0; spin < 60000; ++spin) {
    delivered = 0;
    for (auto& g : gs) delivered += g->total_delivered();
    if (delivered >= expect_deliveries) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const double cpu = cpu_of() - cpu0;
  if (pub_cfg.dashboard) publisher.stop();
  ex.stop();
  stats.flush_all();
  const std::vector<StatsSnapshot> snaps = stats.collect();
  const StatsSnapshot::Hist e2e = merge_hists(snaps, "rt.latency_us.");

  Row row;
  row.n = n;
  row.groups = groups;
  row.unique_msgs = std::uint64_t{groups} * n * rounds;
  row.deliveries = delivered;
  row.wall_s = wall;
  row.msgs_per_sec = static_cast<double>(row.unique_msgs) / wall;
  row.msgs_per_sec_per_core = row.msgs_per_sec / static_cast<double>(groups);
  row.cpu_s = cpu;
  row.msgs_per_cpu_sec = cpu > 0 ? static_cast<double>(row.unique_msgs) / cpu : 0;
  row.deliveries_per_sec = static_cast<double>(delivered) / wall;
  row.datagrams_sent = transport->packets_sent();
  row.datagrams_dropped = transport->packets_dropped();
  row.lat_count = e2e.count;
  row.lat_p50_us = e2e.p50;
  row.lat_p99_us = e2e.p99;
  row.lat_p999_us = e2e.p999;
  return row;
}

void write_json(const std::string& path, const std::string& medium, std::size_t groups,
                const std::vector<Row>& rows) {
  std::ofstream os(path, std::ios::binary);
  os << "{\n  \"bench\": \"rt_throughput\",\n  \"transport\": \"" << medium
     << "\",\n  \"worker_shards\": " << groups << ",\n  \"stack\": \"reliable_fifo\",\n"
     << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"n\": " << r.n << ", \"groups\": " << r.groups
       << ", \"unique_msgs\": " << r.unique_msgs << ", \"deliveries\": " << r.deliveries
       << ", \"wall_s\": " << r.wall_s << ", \"cpu_s\": " << r.cpu_s
       << ", \"msgs_per_sec\": " << r.msgs_per_sec
       << ", \"msgs_per_sec_per_core\": " << r.msgs_per_sec_per_core
       << ", \"msgs_per_cpu_sec\": " << r.msgs_per_cpu_sec
       << ", \"deliveries_per_sec\": " << r.deliveries_per_sec
       << ", \"datagrams_sent\": " << r.datagrams_sent
       << ", \"datagrams_dropped\": " << r.datagrams_dropped
       << ", \"lat_count\": " << r.lat_count << ", \"lat_p50_us\": " << r.lat_p50_us
       << ", \"lat_p99_us\": " << r.lat_p99_us << ", \"lat_p999_us\": " << r.lat_p999_us
       << "}" << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  std::fprintf(stderr, "bench json written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out = "BENCH_rt.json";
  bool loopback = false;
  std::size_t groups = 2;
  double scale = 1.0;
  long stats_interval_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--loopback") == 0) {
      loopback = true;
    } else if (std::strcmp(argv[i], "--groups") == 0 && i + 1 < argc) {
      groups = std::stoul(argv[++i]);
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--stats-interval") == 0 && i + 1 < argc) {
      stats_interval_ms = std::stol(argv[++i]);
    }
  }
  if (!loopback && !UdpTransport::available()) {
    std::fprintf(stderr, "UDP unavailable; using threaded loopback backend\n");
    loopback = true;
  }
  const std::string medium = loopback ? "threaded_loopback" : "udp_loopback";

  msw::bench::title("Real-transport throughput (" + medium + ")");
  std::printf("  %4s %8s %12s %14s %16s %10s %10s %10s\n", "n", "groups", "unique msgs",
              "msgs/sec", "msgs/sec/core", "drops", "p50 us", "p99 us");
  msw::bench::rule();

  std::vector<Row> rows;
  for (const std::size_t n : {std::size_t{2}, std::size_t{8}, std::size_t{32}}) {
    // Rounds shrink with n so every cell moves a comparable message volume.
    const auto rounds = static_cast<std::size_t>(scale * (n == 2 ? 2000 : n == 8 ? 400 : 50));
    const Row r = run_one(n, groups, rounds, loopback, stats_interval_ms);
    rows.push_back(r);
    std::printf("  %4zu %8zu %12llu %14.0f %16.0f %10llu %10.0f %10.0f\n", r.n, r.groups,
                static_cast<unsigned long long>(r.unique_msgs), r.msgs_per_sec,
                r.msgs_per_sec_per_core,
                static_cast<unsigned long long>(r.datagrams_dropped), r.lat_p50_us,
                r.lat_p99_us);
    if (r.deliveries < std::uint64_t{groups} * n * n *
                           static_cast<std::uint64_t>(scale * (n == 2 ? 2000 : n == 8 ? 400 : 50))) {
      std::fprintf(stderr, "warning: n=%zu did not reach full delivery\n", n);
    }
  }
  if (!json_out.empty()) write_json(json_out, medium, groups, rows);
  return 0;
}
