// E-fuzz — fault-plane overhead and fuzzer throughput.
//
// The fault-injection plane sits on the network's per-copy hot path, so
// its cost must be negligible when idle and bounded when active. Each row
// runs the same seeded hybrid-stack workload (4 members, 40 multicasts,
// one mid-run switch) under a different fault schedule and reports the
// wall-clock cost per simulated run next to what the plane actually did
// to the traffic. The last section measures end-to-end fuzzer throughput
// (harness/fuzz.hpp), the number EXPERIMENTS.md quotes for campaign
// sizing.
#include <chrono>
#include <cstdio>
#include <iterator>

#include "bench_util.hpp"
#include "calibration.hpp"
#include "harness/fuzz.hpp"
#include "net/fault.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"

namespace msw::bench {
namespace {

constexpr int kRepeats = 30;

struct PlaneRow {
  const char* label;
  const char* schedule;  // nullptr: no plane installed at all
};

struct PlaneResult {
  double wall_ms_per_run = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t dropped_fault = 0;
};

PlaneResult measure(const PlaneRow& row, const TelemetryOpts* telem = nullptr) {
  PlaneResult res;
  const auto t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kRepeats; ++rep) {
    Simulation sim(kSeed + rep);
    const bool capture = telem && telem->armed() && rep == 0;
    if (capture) sim.enable_tracing();
    Network net(sim.scheduler(), sim.fork_rng(), era_network());
    Group group(sim, net, 4, make_hybrid_total_order_factory());

    std::unique_ptr<FaultPlane> plane;
    if (row.schedule) {
      plane = std::make_unique<FaultPlane>(net, sim.fork_rng(),
                                           *FaultSchedule::parse(row.schedule));
      plane->install();
    }
    group.start();
    for (int k = 0; k < 40; ++k) {
      sim.scheduler().at((25 + k * 25) * kMillisecond,
                         [&group, k] { group.send(k % 4, Bytes(64, 'f')); });
    }
    sim.scheduler().at(350 * kMillisecond,
                       [&group] { switch_layer_of(group.stack(1)).request_switch(); });
    sim.run_for(3 * kSecond);

    res.delivered += group.total_delivered();
    res.duplicated += net.stats().copies_duplicated;
    res.dropped_fault += net.stats().copies_dropped_fault + net.stats().copies_dropped_link +
                         net.stats().copies_dropped_node;
    if (capture) export_telemetry(sim, *telem);
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  res.wall_ms_per_run = wall_ms / kRepeats;
  res.delivered /= kRepeats;
  res.duplicated /= kRepeats;
  res.dropped_fault /= kRepeats;
  return res;
}

}  // namespace
}  // namespace msw::bench

int main(int argc, char** argv) {
  using namespace msw::bench;
  // --trace-out/--metrics-out capture the first repeat of the
  // "everything + crash" row (the schedule exercising every fault kind).
  const TelemetryOpts telem = parse_telemetry_flags(argc, argv);

  title("E-fuzz: fault-plane overhead (4 members, 40 multicasts, 1 switch)");
  const PlaneRow rows[] = {
      {"no plane", nullptr},
      {"hook armed, empty schedule", "none"},
      {"dup+reorder knobs", "dup=0.05@40000;reorder=0.1@20000"},
      {"cut+partition+jitter",
       "linkdown@200000:0-2;linkup@450000:0-2;part@600000:x2;heal@800000:x2;"
       "jitter@300000:150000:5000"},
      {"everything + crash",
       "dup=0.05@40000;reorder=0.1@20000;linkdown@200000:0-2;linkup@450000:0-2;"
       "part@600000:x2;heal@800000:x2;jitter@300000:150000:5000;"
       "crash@900000:3;restart@1100000:3"},
  };
  std::printf("  %-28s %12s %12s %12s %12s\n", "schedule", "ms/run", "delivered",
              "dup copies", "drops");
  rule();
  for (const PlaneRow& row : rows) {
    const bool last = &row == &rows[std::size(rows) - 1];
    const PlaneResult r = measure(row, last ? &telem : nullptr);
    std::printf("  %-28s %12.2f %12llu %12llu %12llu\n", row.label, r.wall_ms_per_run,
                static_cast<unsigned long long>(r.delivered),
                static_cast<unsigned long long>(r.duplicated),
                static_cast<unsigned long long>(r.dropped_fault));
  }

  title("fuzzer throughput (run_fuzz, default config)");
  {
    const auto t0 = std::chrono::steady_clock::now();
    const msw::FuzzSummary s = msw::run_fuzz(1, 100, msw::FuzzConfig{});
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::printf("  100 iterations in %.2f s -> %.1f iters/s, %zu failures, "
                "corpus_digest=%016llx\n",
                secs, 100.0 / secs, s.failures.size(),
                static_cast<unsigned long long>(s.corpus_digest));
    note("a failure count above zero here means a real regression: the clean");
    note("stack must pass the oracle under every generated schedule.");
  }
  return 0;
}
