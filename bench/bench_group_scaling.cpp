// E9 — ablation beyond the paper: how the two total-order mechanisms
// scale with GROUP SIZE at fixed light load, and how the reliable layer's
// control plane scales to large groups under loss.
//
// The paper's Figure 2 varies the number of senders at n = 10; the first
// sweep varies n itself with 2 active senders. It isolates the structural
// difference the paper describes: token latency is about half a ring
// rotation, so it grows linearly with n; the sequencer path is two hops
// regardless of n (its problem is senders, not members).
//
// The second sweep is the control-plane scaling experiment: peer-assisted
// reliable multicast at n in {16, 64, 128} with 1% per-copy loss, run
// twice — once with the range/varint control encoding and once with the
// legacy per-sequence frames — reporting NACK and ack-vector bytes per
// delivered message. `--json F` writes the rows as BENCH JSON for CI;
// `--max-n N` truncates the sweep (CI smoke runs it at 64).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "calibration.hpp"
#include "proto/reliable_layer.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"

namespace msw::bench {
namespace {

double run_one(const LayerFactory& factory, std::size_t members) {
  Simulation sim(kSeed);
  Network net(sim.scheduler(), sim.fork_rng(), era_network());
  Group group(sim, net, members, factory);
  group.start();
  WorkloadConfig cfg = paper_workload(2);
  cfg.duration = 6 * kSecond;
  cfg.warmup = 2 * kSecond;
  cfg.drain = 5 * kSecond;
  const auto res = run_workload(sim, group, cfg);
  return res.latency_ms.mean();
}

/// One reliable control-plane measurement: n members, 1% loss, 2 senders.
struct ControlRow {
  std::size_t members = 0;
  bool legacy = false;
  std::uint64_t delivered = 0;       // app deliveries across all members
  std::uint64_t missing = 0;         // 0 = ran to completion
  std::uint64_t nack_bytes = 0;      // summed over every member's layer
  std::uint64_t nack_entries = 0;    // ranges (new) or seqs (legacy)
  std::uint64_t ack_bytes = 0;
  std::uint64_t retransmissions = 0;
  double nack_bytes_per_delivery() const {
    return delivered ? static_cast<double>(nack_bytes) / static_cast<double>(delivered) : 0.0;
  }
  double ack_bytes_per_delivery() const {
    return delivered ? static_cast<double>(ack_bytes) / static_cast<double>(delivered) : 0.0;
  }
};

ControlRow run_control(std::size_t members, bool legacy) {
  Simulation sim(kSeed);
  // Protocol-logic network: exact 1 ms hops, no CPU/bandwidth modelling —
  // the measured quantity is control bytes, not queueing — plus 1% loss so
  // the NACK/ack machinery does real work at scale.
  NetConfig net_cfg;
  net_cfg.base_latency = 1 * kMillisecond;
  net_cfg.jitter = 0;
  net_cfg.loopback_latency = 20;
  net_cfg.cpu_send = 0;
  net_cfg.cpu_recv = 0;
  net_cfg.bandwidth_bps = 0;
  net_cfg.wire_overhead_bytes = 0;
  net_cfg.loss = 0.01;
  Network net(sim.scheduler(), sim.fork_rng(), net_cfg);

  std::vector<ReliableLayer*> layers;
  ReliableConfig rcfg;
  rcfg.peer_assist = true;
  rcfg.legacy_control = legacy;
  const LayerFactory factory = [&layers, rcfg](NodeId, const std::vector<NodeId>&) {
    auto l = std::make_unique<ReliableLayer>(rcfg);
    layers.push_back(l.get());
    std::vector<std::unique_ptr<Layer>> out;
    out.push_back(std::move(l));
    return out;
  };
  Group group(sim, net, members, factory);
  group.start();

  WorkloadConfig cfg;
  cfg.senders = 2;
  cfg.rate_per_sender = 50.0;
  cfg.duration = 3 * kSecond;
  cfg.warmup = 500 * kMillisecond;
  cfg.drain = 5 * kSecond;
  cfg.body_size = 64;
  cfg.poisson = true;
  const auto res = run_workload(sim, group, cfg);

  ControlRow row;
  row.members = members;
  row.legacy = legacy;
  row.delivered = res.delivered;
  row.missing = res.missing_deliveries;
  for (const ReliableLayer* l : layers) {
    const auto s = l->stats();
    row.nack_bytes += s.nack_bytes_sent;
    row.nack_entries += s.nack_entries_sent;
    row.ack_bytes += s.ack_bytes_sent;
    row.retransmissions += s.retransmissions;
  }
  return row;
}

void write_json(const std::string& path, const std::vector<ControlRow>& rows) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os << "{\n  \"bench\": \"group_scaling_reliable_control\",\n  \"loss\": 0.01,\n"
     << "  \"senders\": 2,\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ControlRow& r = rows[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"members\": %zu, \"encoding\": \"%s\", \"delivered\": %llu, "
                  "\"missing\": %llu, \"nack_bytes\": %llu, \"nack_entries\": %llu, "
                  "\"ack_bytes\": %llu, \"retransmissions\": %llu, "
                  "\"nack_bytes_per_delivery\": %.4f, \"ack_bytes_per_delivery\": %.4f}%s\n",
                  r.members, r.legacy ? "legacy" : "range",
                  static_cast<unsigned long long>(r.delivered),
                  static_cast<unsigned long long>(r.missing),
                  static_cast<unsigned long long>(r.nack_bytes),
                  static_cast<unsigned long long>(r.nack_entries),
                  static_cast<unsigned long long>(r.ack_bytes),
                  static_cast<unsigned long long>(r.retransmissions),
                  r.nack_bytes_per_delivery(), r.ack_bytes_per_delivery(),
                  i + 1 < rows.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
  std::fprintf(stderr, "bench json written to %s\n", path.c_str());
}

int run(std::size_t max_n, const std::string& json_out, const TelemetryOpts& telem) {
  title("Group-size scaling (ablation): latency vs. members, 2 senders x 50 msg/s");
  std::printf("%-8s %14s %14s %12s\n", "members", "sequencer(ms)", "token(ms)",
              "token/seq");
  rule(56);
  double seq_2 = 0, seq_16 = 0, tok_2 = 0, tok_16 = 0;
  for (std::size_t n = 2; n <= std::min<std::size_t>(16, max_n); n += 2) {
    const double s = run_one(make_sequencer_factory(sequencer_config()), n);
    const double t = run_one(make_token_factory(token_config()), n);
    std::printf("%-8zu %14.2f %14.2f %12.1f\n", n, s, t, t / s);
    if (n == 2) {
      seq_2 = s;
      tok_2 = t;
    }
    if (n == 16) {
      seq_16 = s;
      tok_16 = t;
    }
  }
  rule(56);
  if (seq_16 > 0) {
    std::printf(
        "structure check: token latency grew %.1fx from n=2 to n=16 (half a ring\n"
        "rotation is O(n)); sequencer latency grew %.1fx (two hops regardless of n).\n"
        "This is why the paper's trade-off is about ACTIVE SENDERS, not group size.\n",
        tok_16 / tok_2, seq_16 / seq_2);
  }

  title("Reliable control plane at scale: peer assist, 1% loss, range vs legacy frames");
  std::printf("%-8s %-8s %10s %8s %12s %12s %12s %8s\n", "members", "encoding", "delivered",
              "missing", "nack B", "nack B/msg", "ack B/msg", "retx");
  rule(84);
  std::vector<ControlRow> rows;
  bool range_wins = true;
  for (std::size_t n : {std::size_t{16}, std::size_t{64}, std::size_t{128}}) {
    if (n > max_n) continue;
    ControlRow range_row, legacy_row;
    for (const bool legacy : {false, true}) {
      const ControlRow row = run_control(n, legacy);
      (legacy ? legacy_row : range_row) = row;
      rows.push_back(row);
      std::printf("%-8zu %-8s %10llu %8llu %12llu %12.3f %12.3f %8llu\n", n,
                  legacy ? "legacy" : "range",
                  static_cast<unsigned long long>(row.delivered),
                  static_cast<unsigned long long>(row.missing),
                  static_cast<unsigned long long>(row.nack_bytes),
                  row.nack_bytes_per_delivery(), row.ack_bytes_per_delivery(),
                  static_cast<unsigned long long>(row.retransmissions));
    }
    if (range_row.missing != 0 || legacy_row.missing != 0) {
      std::printf("WARNING: n=%zu did not run to completion\n", n);
      range_wins = false;
    }
    if (range_row.nack_bytes_per_delivery() >= legacy_row.nack_bytes_per_delivery()) {
      range_wins = false;
    }
  }
  rule(84);
  std::printf("range encoding %s the legacy per-sequence frames on NACK bytes/delivery.\n",
              range_wins ? "beats" : "DID NOT beat");

  if (!json_out.empty()) write_json(json_out, rows);

  if (telem.armed()) {
    // One representative traced run for --trace-out/--metrics-out.
    Simulation sim(kSeed);
    sim.enable_tracing();
    Network net(sim.scheduler(), sim.fork_rng(), era_network());
    Group group(sim, net, std::min<std::size_t>(16, max_n),
                make_sequencer_factory(sequencer_config()));
    group.start();
    WorkloadConfig cfg = paper_workload(2);
    cfg.duration = 2 * kSecond;
    cfg.warmup = 500 * kMillisecond;
    cfg.drain = 2 * kSecond;
    run_workload(sim, group, cfg);
    export_telemetry(sim, telem);
  }
  return range_wins ? 0 : 1;
}

}  // namespace
}  // namespace msw::bench

int main(int argc, char** argv) {
  std::size_t max_n = 128;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-n") == 0 && i + 1 < argc) {
      max_n = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    }
  }
  const msw::bench::TelemetryOpts telem = msw::bench::parse_telemetry_flags(argc, argv);
  return msw::bench::run(max_n, json_out, telem);
}
