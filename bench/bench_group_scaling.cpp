// E9 — ablation beyond the paper: how the two total-order mechanisms
// scale with GROUP SIZE at fixed light load.
//
// The paper's Figure 2 varies the number of senders at n = 10; this sweep
// varies n itself with 2 active senders. It isolates the structural
// difference the paper describes: token latency is about half a ring
// rotation, so it grows linearly with n; the sequencer path is two hops
// regardless of n (its problem is senders, not members).
#include <cstdio>

#include "bench_util.hpp"
#include "calibration.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"

namespace msw::bench {
namespace {

double run_one(const LayerFactory& factory, std::size_t members) {
  Simulation sim(kSeed);
  Network net(sim.scheduler(), sim.fork_rng(), era_network());
  Group group(sim, net, members, factory);
  group.start();
  WorkloadConfig cfg = paper_workload(2);
  cfg.duration = 6 * kSecond;
  cfg.warmup = 2 * kSecond;
  cfg.drain = 5 * kSecond;
  const auto res = run_workload(sim, group, cfg);
  return res.latency_ms.mean();
}

int run() {
  title("Group-size scaling (ablation): latency vs. members, 2 senders x 50 msg/s");
  std::printf("%-8s %14s %14s %12s\n", "members", "sequencer(ms)", "token(ms)",
              "token/seq");
  rule(56);
  double seq_2 = 0, seq_16 = 0, tok_2 = 0, tok_16 = 0;
  for (std::size_t n = 2; n <= 16; n += 2) {
    const double s = run_one(make_sequencer_factory(sequencer_config()), n);
    const double t = run_one(make_token_factory(token_config()), n);
    std::printf("%-8zu %14.2f %14.2f %12.1f\n", n, s, t, t / s);
    if (n == 2) {
      seq_2 = s;
      tok_2 = t;
    }
    if (n == 16) {
      seq_16 = s;
      tok_16 = t;
    }
  }
  rule(56);
  std::printf(
      "structure check: token latency grew %.1fx from n=2 to n=16 (half a ring\n"
      "rotation is O(n)); sequencer latency grew %.1fx (two hops regardless of n).\n"
      "This is why the paper's trade-off is about ACTIVE SENDERS, not group size.\n",
      tok_16 / tok_2, seq_16 / seq_2);
  return 0;
}

}  // namespace
}  // namespace msw::bench

int main() { return msw::bench::run(); }
