// E12 — ablation of SP's control plane: the NORMAL token circulates
// perpetually so that any member can initiate a switch, which costs
// background control traffic. Holding the token `normal_hold` per member
// throttles that cost but delays the next switch (a member must wait for
// the NORMAL token to initiate). This sweep quantifies the trade-off the
// implementation note in the paper's section 2 leaves implicit.
#include <cstdio>

#include "bench_util.hpp"
#include "calibration.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"

namespace msw::bench {
namespace {

struct Row {
  Duration hold;
  double control_hops_per_sec;  // idle NORMAL-token hops (group-wide)
  double request_to_done_ms;    // request_switch -> all members switched
};

Row measure(Duration hold) {
  Simulation sim(kSeed);
  Network net(sim.scheduler(), sim.fork_rng(), era_network());
  HybridConfig cfg;
  cfg.sequencer = sequencer_config();
  cfg.token = token_config();
  cfg.sp.normal_hold = hold;
  Group group(sim, net, kGroupSize, make_hybrid_total_order_factory(cfg));
  group.start();

  // Idle control cost over 5 s.
  sim.run_until(5 * kSecond);
  std::uint64_t hops = 0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    hops += switch_layer_of(group.stack(i)).stats().token_hops;
  }

  // Responsiveness: request at t=5 s, wait for everyone to switch.
  const Time requested = sim.now();
  switch_layer_of(group.stack(3)).request_switch();
  Time done = 0;
  while (sim.now() < 120 * kSecond) {
    sim.run_for(kMillisecond);
    bool all = true;
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (switch_layer_of(group.stack(i)).epoch() < 1) all = false;
    }
    if (all) {
      done = sim.now();
      break;
    }
  }

  Row row;
  row.hold = hold;
  row.control_hops_per_sec = static_cast<double>(hops) / 5.0;
  row.request_to_done_ms = to_ms(done - requested);
  return row;
}

int run() {
  title("SP control-plane ablation: NORMAL-token hold vs. responsiveness");
  std::printf("%-12s %20s %22s\n", "hold(ms)", "idle ctl hops/s", "request->switched(ms)");
  rule(58);
  for (Duration hold : {Duration{0}, 5 * kMillisecond, 20 * kMillisecond, 50 * kMillisecond,
                        200 * kMillisecond}) {
    const Row row = measure(hold);
    std::printf("%-12.0f %20.1f %22.2f\n", to_ms(row.hold), row.control_hops_per_sec,
                row.request_to_done_ms);
  }
  rule(58);
  std::printf(
      "holding the idle token cuts background control traffic roughly in\n"
      "proportion, and pushes switch initiation latency up by about half a\n"
      "(now slower) ring rotation — pick per deployment; the paper's\n"
      "implementation corresponds to hold=0.\n");
  return 0;
}

}  // namespace
}  // namespace msw::bench

int main() { return msw::bench::run(); }
