#!/usr/bin/env bash
# Micro-benchmark smoke run for the zero-copy message path.
#
# Builds bench_micro + bench_group_scaling in Release, runs them, and
# emits BENCH_micro.json at the repo root containing:
#   - "before": the checked-in seed baseline (bench/baseline_seed.json),
#     captured from the pre-refactor tree with these same benchmarks
#   - "after":  a fresh run of the current tree
#   - "speedups": before/after ratios for the headline benchmarks
#   - "methodology": compiler, flags, machine, repetition count
#
# Usage: bench/run_micro.sh [build-dir]   (default: build-rel)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-rel}"
REPS="${BENCH_REPS:-3}"
FILTER='BM_WriterReaderRoundTrip|BM_MessageHeaderPushPop|BM_SchedulerDispatch|BM_SchedulerCancelHeavy|BM_SchedulerChurn|BM_MulticastFanOut|BM_BatchedFanOut|BM_BatchedGroupSend'

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j --target bench_micro bench_group_scaling

AFTER_JSON="$(mktemp)"
SCALING_TXT="$(mktemp)"
trap 'rm -f "${AFTER_JSON}" "${SCALING_TXT}"' EXIT

"${BUILD_DIR}/bench/bench_micro" \
  --benchmark_filter="${FILTER}" \
  --benchmark_repetitions="${REPS}" \
  --benchmark_report_aggregates_only=true \
  --benchmark_out="${AFTER_JSON}" \
  --benchmark_out_format=json

"${BUILD_DIR}/bench/bench_group_scaling" | tee "${SCALING_TXT}"

BENCH_AFTER_JSON="${AFTER_JSON}" BENCH_SCALING_TXT="${SCALING_TXT}" \
BENCH_BUILD_DIR="${BUILD_DIR}" BENCH_REPS="${REPS}" \
python3 - "${REPO_ROOT}" <<'PY'
import json, os, platform, subprocess, sys

repo = sys.argv[1]
after_raw = json.load(open(os.environ["BENCH_AFTER_JSON"]))
before_raw = json.load(open(os.path.join(repo, "bench", "baseline_seed.json")))

def means(raw):
    # Prefer the mean aggregate; with a single repetition google-benchmark
    # emits only plain iteration entries, so fall back to those.
    out = {}
    for b in raw["benchmarks"]:
        if b.get("aggregate_name") == "mean" or (
            b.get("run_type") == "iteration" and b["run_name"] not in out
        ):
            out[b["run_name"]] = {
                "real_time_ns": b["real_time"],
                "cpu_time_ns": b["cpu_time"],
            }
    return out

before, after = means(before_raw), means(after_raw)

headline = {
    "MulticastFanOut/32": "BM_MulticastFanOut/32",
    "MulticastFanOut/8": "BM_MulticastFanOut/8",
    "MulticastFanOut/128": "BM_MulticastFanOut/128",
    "MulticastFanOut/512": "BM_MulticastFanOut/512",
    "BatchedFanOut/128": "BM_BatchedFanOut/128",
    "BatchedFanOut/512": "BM_BatchedFanOut/512",
    "MessageHeaderPushPop/1": "BM_MessageHeaderPushPop/1",
    "SchedulerDispatch": "BM_SchedulerDispatch",
    "SchedulerCancelHeavy": "BM_SchedulerCancelHeavy",
    "MessageHeaderPushPop/8": "BM_MessageHeaderPushPop/8",
    "WriterReaderRoundTrip": "BM_WriterReaderRoundTrip",
}
speedups = {}
for label, name in headline.items():
    if name in before and name in after:
        b, a = before[name]["real_time_ns"], after[name]["real_time_ns"]
        speedups[label] = {
            "before_ns": round(b, 1),
            "after_ns": round(a, 1),
            "speedup_x": round(b / a, 2),
            "reduction_pct": round(100.0 * (1.0 - a / b), 1),
        }

# The acceptance headline: batched fan-out vs the pre-batching per-message
# tree, normalized per delivered copy (BM_BatchedFanOut sends a 16-message
# run to n members; BM_MulticastFanOut sends one message to n members).
KRUN = 16
batched_fanout = {}
for n in (32, 128, 512):
    batched = after.get(f"BM_BatchedFanOut/{n}")
    unbatched = before.get(f"BM_MulticastFanOut/{n}")
    if batched and unbatched:
        per_copy_after = batched["real_time_ns"] / (n * KRUN)
        per_copy_before = unbatched["real_time_ns"] / n
        batched_fanout[f"n={n}"] = {
            "before_ns_per_copy": round(per_copy_before, 2),
            "after_ns_per_copy": round(per_copy_after, 2),
            "speedup_x": round(per_copy_before / per_copy_after, 2),
        }

def compiler_version():
    try:
        cache = open(os.path.join(os.environ["BENCH_BUILD_DIR"], "CMakeCache.txt")).read()
        cxx = [l.split("=", 1)[1] for l in cache.splitlines()
               if l.startswith("CMAKE_CXX_COMPILER:")][0]
        return subprocess.check_output([cxx, "--version"], text=True).splitlines()[0]
    except Exception:
        return "unknown"

doc = {
    "suite": "zero-copy message path microbenchmarks",
    "methodology": {
        "build_type": "Release",
        "cxx_flags": "-O3 -DNDEBUG (CMake Release) + project -std=c++20",
        "compiler": compiler_version(),
        "machine": platform.platform(),
        "cpu": after_raw["context"].get("host_name", "unknown") + ", "
               + str(after_raw["context"].get("num_cpus", "?")) + " cpus @ "
               + str(after_raw["context"].get("mhz_per_cpu", "?")) + " MHz",
        "repetitions": int(os.environ["BENCH_REPS"]),
        "statistic": "mean of repetitions, real time",
        "before": "pre-batching tree (bench/baseline_seed.json capture) with identical benchmark sources",
        "after": "current tree",
        "date": after_raw["context"]["date"],
    },
    "speedups": speedups,
    "batched_fanout_per_copy": batched_fanout,
    "before": before,
    "after": after,
    "group_scaling_stdout": open(os.environ["BENCH_SCALING_TXT"]).read(),
}
out = os.path.join(repo, "BENCH_micro.json")
json.dump(doc, open(out, "w"), indent=2)
print(f"\nwrote {out}")
for label, s in speedups.items():
    print(f"  {label:24s} {s['before_ns']:>10.1f} -> {s['after_ns']:>10.1f} ns   "
          f"{s['speedup_x']}x ({s['reduction_pct']}% faster)")
for label, s in batched_fanout.items():
    print(f"  batched fan-out {label:8s} {s['before_ns_per_copy']:>8.2f} -> "
          f"{s['after_ns_per_copy']:>8.2f} ns/copy   {s['speedup_x']}x")
PY
