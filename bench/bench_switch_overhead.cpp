// E4 — section 7: the cost of switching.
//
// At each load level k (active senders at 50 msg/s), trigger one switch
// from the sequencer to the token protocol mid-run and measure:
//   - switch duration at the initiator (NORMAL token captured -> FLUSH
//     returned; the paper reports ~31 ms near the cross-over),
//   - the worst local switch duration across members,
//   - the perceived application hiccup: worst delivery latency for
//     messages sent during the switch window, compared against the
//     steady-state mean before it (the paper notes the hiccup is often
//     smaller than the switch overhead because senders are never blocked).
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "calibration.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"

namespace msw::bench {
namespace {

struct OverheadRow {
  std::size_t senders;
  double switch_ms;        // initiator: NORMAL -> FLUSH return
  double worst_local_ms;   // worst member PREPARE -> switchover
  double baseline_ms;      // steady-state mean latency before the switch
  double hiccup_ms;        // worst in-switch latency minus baseline mean
  std::uint64_t max_buffered;
};

OverheadRow measure(std::size_t senders, const TelemetryOpts* telem = nullptr) {
  Simulation sim(kSeed);
  if (telem && telem->armed()) sim.enable_tracing();
  Network net(sim.scheduler(), sim.fork_rng(), era_network());
  HybridConfig hcfg;
  hcfg.sequencer = sequencer_config();
  hcfg.token = token_config();
  hcfg.sp = switch_config();
  Group group(sim, net, kGroupSize, make_hybrid_total_order_factory(hcfg));
  group.start();

  // Drive the paper workload by hand so we can act mid-run.
  Rng rng = sim.fork_rng();
  const auto wl = paper_workload(senders);
  const auto interval = static_cast<Duration>(1e6 / wl.rate_per_sender);
  const Time end_sends = 6 * kSecond;
  for (std::size_t s = 0; s < wl.senders; ++s) {
    Time t = static_cast<Duration>(rng.below(static_cast<std::uint64_t>(interval)));
    while (t < end_sends) {
      sim.scheduler().at(t, [&group, s] { group.send(s, Bytes(64, 'w')); });
      t += std::max<Duration>(1, static_cast<Duration>(
                                     rng.exponential(static_cast<double>(interval))));
    }
  }

  auto& initiator = switch_layer_of(group.stack(1));
  const Time switch_at = 3 * kSecond;
  sim.scheduler().at(switch_at, [&initiator] { initiator.request_switch(); });

  // Run until every member completed the switch, then drain.
  Time completed_at = 0;
  sim.run_until(switch_at);
  while (sim.now() < 20 * kSecond) {
    sim.run_for(kMillisecond);
    bool all = true;
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (switch_layer_of(group.stack(i)).epoch() < 1) all = false;
    }
    if (all) {
      completed_at = sim.now();
      break;
    }
  }
  sim.run_until(end_sends + 10 * kSecond);

  OverheadRow row{};
  row.senders = senders;
  row.switch_ms = to_ms(initiator.stats().last_switch_duration);
  for (std::size_t i = 0; i < group.size(); ++i) {
    const auto& st = switch_layer_of(group.stack(i)).stats();
    row.worst_local_ms = std::max(row.worst_local_ms, to_ms(st.last_local_switch_duration));
    row.max_buffered = std::max(row.max_buffered, st.max_buffered);
  }
  const auto baseline = trace_latency(group.trace(), 1 * kSecond, switch_at, group.size());
  const auto during =
      trace_latency(group.trace(), switch_at, std::max(completed_at, switch_at + 1),
                    group.size());
  row.baseline_ms = baseline.latency_ms.mean();
  row.hiccup_ms =
      during.latency_ms.empty() ? 0.0 : during.latency_ms.max() - baseline.latency_ms.mean();
  if (telem && telem->armed()) export_telemetry(sim, *telem);
  return row;
}

int run(const TelemetryOpts& telem) {
  title("Section 7 — overhead of switching (sequencer -> token)");
  note("one switch triggered at t=3 s under k senders x 50 msg/s");
  std::printf("\n%-8s %12s %14s %14s %12s %10s\n", "senders", "switch(ms)", "worstLocal(ms)",
              "baseline(ms)", "hiccup(ms)", "buffered");
  rule(78);
  double near_crossover = 0;
  for (std::size_t k = 1; k <= kGroupSize; ++k) {
    // --trace-out/--metrics-out capture the k=5 run — the cross-over load
    // the paper's 31 ms figure refers to.
    const auto row = measure(k, k == 5 ? &telem : nullptr);
    std::printf("%-8zu %12.2f %14.2f %14.2f %12.2f %10llu\n", row.senders, row.switch_ms,
                row.worst_local_ms, row.baseline_ms, row.hiccup_ms,
                static_cast<unsigned long long>(row.max_buffered));
    if (k == 5) near_crossover = row.switch_ms;
  }
  rule(78);
  std::printf(
      "paper: 'the overhead of switching near the cross-over point is about 31\n"
      "msecs... the perceived hiccup is often less than that' — measured %.1f ms at\n"
      "k=5 (same order of magnitude; our simulated control hop costs ~1.75 ms vs.\n"
      "roughly 1 ms on the paper's testbed, and the token crosses 10 members three\n"
      "times). Up to the cross-over the hiccup stays below the switch duration\n"
      "because senders are never blocked; beyond it both columns are dominated by\n"
      "draining the saturated sequencer's backlog — the paper's 'unexpected hitch':\n"
      "switch cost depends on the latency of the protocol being switched away from.\n",
      near_crossover);
  return 0;
}

}  // namespace
}  // namespace msw::bench

int main(int argc, char** argv) {
  return msw::bench::run(msw::bench::parse_telemetry_flags(argc, argv));
}
