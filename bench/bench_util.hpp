// Shared console-table helpers for the benchmark harness.
#pragma once

#include <cstdio>
#include <string>

namespace msw::bench {

inline void title(const std::string& text) {
  std::printf("\n=== %s ===\n\n", text.c_str());
}

inline void rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

}  // namespace msw::bench
