// Shared console-table helpers for the benchmark harness.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>

#include "sim/simulation.hpp"
#include "telemetry/export.hpp"

namespace msw::bench {

inline void title(const std::string& text) {
  std::printf("\n=== %s ===\n\n", text.c_str());
}

inline void rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

/// Optional telemetry capture for bench binaries. Benches that support it
/// accept --trace-out F (Chrome trace_event JSON of one representative
/// run) and --metrics-out F (metrics JSON); with neither flag, tracing
/// stays unarmed and the bench measures the zero-telemetry hot path.
struct TelemetryOpts {
  std::string trace_out;
  std::string metrics_out;
  bool armed() const { return !trace_out.empty() || !metrics_out.empty(); }
};

inline TelemetryOpts parse_telemetry_flags(int argc, char** argv) {
  TelemetryOpts o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "--trace-out" || arg == "--metrics-out") && i + 1 < argc) {
      (arg == "--trace-out" ? o.trace_out : o.metrics_out) = argv[++i];
    }
  }
  return o;
}

/// Write the armed simulation's trace / metrics to the requested files.
inline void export_telemetry(const Simulation& sim, const TelemetryOpts& o) {
  if (!o.trace_out.empty()) {
    std::ofstream os(o.trace_out, std::ios::binary);
    write_chrome_trace(sim.telemetry(), os);
    std::fprintf(stderr, "trace written to %s\n", o.trace_out.c_str());
  }
  if (!o.metrics_out.empty()) {
    std::ofstream os(o.metrics_out, std::ios::binary);
    write_metrics_json(sim.telemetry(), os);
    std::fprintf(stderr, "metrics written to %s\n", o.metrics_out.c_str());
  }
}

}  // namespace msw::bench
