// E7 — section 8 (future work): switching at a virtually-synchronous view
// change supports the Virtual Synchrony property; the token-based SP does
// not, but never blocks senders. This bench contrasts the two mechanisms
// on the same workload:
//   - switch completion time,
//   - whether senders were blocked (and for how many sends),
//   - Virtual Synchrony on the application trace (the vsync switch
//     delivers real view markers; every member must agree on the epoch
//     contents).
#include <cstdio>

#include "bench_util.hpp"
#include "calibration.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"
#include "switch/vsync_switch.hpp"
#include "trace/properties.hpp"

namespace msw::bench {
namespace {

struct MechanismRow {
  const char* name;
  double switch_ms;
  std::uint64_t blocked_sends;
  bool vsync_holds;
  bool total_order_holds;
  std::uint64_t delivered;
};

MechanismRow run_sp() {
  Simulation sim(kSeed);
  Network net(sim.scheduler(), sim.fork_rng(), era_network());
  HybridConfig cfg;
  cfg.sequencer = sequencer_config();
  cfg.token = token_config();
  Group group(sim, net, 6, make_hybrid_total_order_factory(cfg));
  group.start();
  Rng rng = sim.fork_rng();
  for (int k = 0; k < 150; ++k) {
    const std::size_t sender = rng.index(6);
    sim.scheduler().at(k * 6 * kMillisecond, [&group, sender, k] {
      group.send(sender, to_bytes("sp" + std::to_string(k)));
    });
  }
  sim.scheduler().at(300 * kMillisecond,
                     [&group] { switch_layer_of(group.stack(0)).request_switch(); });
  sim.run_until(15 * kSecond);

  MechanismRow row{};
  row.name = "SP (token, 3 rotations)";
  row.switch_ms = to_ms(switch_layer_of(group.stack(0)).stats().last_switch_duration);
  row.blocked_sends = 0;  // SP never blocks senders
  row.vsync_holds = VirtualSynchronyProperty().holds(group.trace());
  row.total_order_holds = TotalOrderProperty().holds(group.trace());
  row.delivered = group.total_delivered();
  return row;
}

MechanismRow run_vsync() {
  Simulation sim(kSeed);
  Network net(sim.scheduler(), sim.fork_rng(), era_network());
  Group group(sim, net, 6,
              make_vsync_switch_factory(make_sequencer_factory(sequencer_config()),
                                        make_token_factory(token_config())));
  group.start();
  Rng rng = sim.fork_rng();
  for (int k = 0; k < 150; ++k) {
    const std::size_t sender = rng.index(6);
    sim.scheduler().at(k * 6 * kMillisecond, [&group, sender, k] {
      group.send(sender, to_bytes("vs" + std::to_string(k)));
    });
  }
  std::uint64_t blocked = 0;
  sim.scheduler().at(300 * kMillisecond,
                     [&group] { vsync_switch_layer_of(group.stack(0)).request_switch(); });
  // Sample blocked sends while the flush runs.
  for (int t = 300; t < 800; t += 2) {
    sim.scheduler().at(t * kMillisecond, [&group, &blocked] {
      for (std::size_t i = 0; i < group.size(); ++i) {
        blocked = std::max(blocked, static_cast<std::uint64_t>(
                                        vsync_switch_layer_of(group.stack(i)).blocked_sends()));
      }
    });
  }
  sim.run_until(15 * kSecond);

  MechanismRow row{};
  row.name = "vsync view change";
  row.switch_ms = to_ms(vsync_switch_layer_of(group.stack(0)).stats().last_switch_duration);
  row.blocked_sends = blocked;
  row.vsync_holds = VirtualSynchronyProperty().holds(group.trace());
  row.total_order_holds = TotalOrderProperty().holds(group.trace());
  row.delivered = group.total_delivered();
  return row;
}

int run() {
  title("Section 8 — switching mechanisms: SP token ring vs. vsync view change");
  note("6 members, 150 messages over ~0.9 s, one switch at t=300 ms");
  std::printf("\n%-26s %12s %14s %12s %12s %10s\n", "mechanism", "switch(ms)",
              "blockedSends", "VS holds", "TO holds", "delivered");
  rule(92);
  for (const auto& row : {run_sp(), run_vsync()}) {
    std::printf("%-26s %12.2f %14llu %12s %12s %10llu\n", row.name, row.switch_ms,
                static_cast<unsigned long long>(row.blocked_sends),
                row.vsync_holds ? "yes" : "NO", row.total_order_holds ? "yes" : "NO",
                static_cast<unsigned long long>(row.delivered));
  }
  rule(92);
  std::printf(
      "SP's trace carries no view structure at all (Virtual Synchrony holds only\n"
      "vacuously) and never blocks a sender; the vsync mechanism delivers genuine\n"
      "view markers, preserves Virtual Synchrony across the protocol swap, and pays\n"
      "for it by blocking senders during the flush — the trade-off the paper's\n"
      "future-work section describes.\n");
  return 0;
}

}  // namespace
}  // namespace msw::bench

int main() { return msw::bench::run(); }
