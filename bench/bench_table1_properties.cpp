// E1 — Table 1: the property catalogue.
//
// For each of the paper's example properties, exhibit a generated trace on
// which the executable predicate holds and a minimally tampered trace on
// which it fails — confirming each formalization discriminates exactly the
// behaviour its Table 1 description names.
#include <cstdio>

#include "bench_util.hpp"
#include "trace/generators.hpp"
#include "trace/properties.hpp"

namespace msw::bench {
namespace {

struct CatalogueRow {
  const char* name;
  const char* description;
  bool holds_on_witness;
  bool fails_on_tamper;
};

int run() {
  title("Table 1 — examples of properties (executable catalogue)");
  Rng rng(7);
  GenOptions opts;
  opts.n_procs = 4;
  opts.n_msgs = 5;

  std::vector<CatalogueRow> rows;

  {
    const Trace good = gen_total_order_trace(rng, opts);
    Trace bad = good;
    // Swap two deliveries at one process to break the agreed order.
    std::vector<std::size_t> del;
    for (std::size_t i = 0; i < bad.size(); ++i) {
      if (bad[i].is_deliver() && bad[i].process == 0) del.push_back(i);
    }
    if (del.size() >= 2) std::swap(bad[del[0]], bad[del[1]]);
    rows.push_back({"Reliability", "every message sent is delivered to all receivers",
                    ReliabilityProperty({0, 1, 2, 3}).holds(good),
                    !ReliabilityProperty({0, 1, 2, 3}).holds(
                        Trace(good.begin(), good.end() - 2))});
    rows.push_back({"Total Order",
                    "processes delivering the same two messages agree on their order",
                    TotalOrderProperty().holds(good), !TotalOrderProperty().holds(bad)});
  }
  {
    opts.seq_base = 1000;
    std::set<std::uint32_t> trusted = {0, 1, 2, 3};
    const Trace good = gen_cluster_trace(rng, opts, trusted);
    Trace forged = good;
    forged.push_back(deliver_ev(0, /*sender=*/77, 9999));
    rows.push_back({"Integrity", "delivered messages come from trusted processes",
                    IntegrityProperty(trusted).holds(good),
                    !IntegrityProperty(trusted).holds(forged)});
    std::set<std::uint32_t> inner = {0, 1};
    opts.seq_base = 2000;
    const Trace cluster = gen_cluster_trace(rng, opts, inner);
    Trace leaked = cluster;
    leaked.push_back(deliver_ev(3, 0, opts.seq_base));  // outsider sees it
    rows.push_back({"Confidentiality",
                    "non-trusted processes cannot see trusted traffic",
                    ConfidentialityProperty(inner).holds(cluster),
                    !ConfidentialityProperty(inner).holds(leaked)});
  }
  {
    opts.seq_base = 3000;
    const Trace good = gen_sparse_trace(rng, opts);
    Trace replayed = good;
    for (const auto& e : good) {
      if (e.is_deliver()) {
        replayed.push_back(e);  // duplicate delivery of the same body
        break;
      }
    }
    rows.push_back({"No Replay", "a message body is delivered at most once per process",
                    NoReplayProperty().holds(good), !NoReplayProperty().holds(replayed)});
  }
  {
    opts.seq_base = 4000;
    const Trace good = gen_priority_trace(rng, opts);
    Trace demoted = good;
    // Move the master's first delivery to the end.
    for (std::size_t i = 0; i < demoted.size(); ++i) {
      if (demoted[i].is_deliver() && demoted[i].process == 0) {
        auto e = demoted[i];
        demoted.erase(demoted.begin() + static_cast<std::ptrdiff_t>(i));
        demoted.push_back(e);
        break;
      }
    }
    rows.push_back({"Prioritized Delivery", "the master delivers every message first",
                    PrioritizedDeliveryProperty(0).holds(good),
                    !PrioritizedDeliveryProperty(0).holds(demoted)});
  }
  {
    opts.seq_base = 5000;
    const Trace good = gen_amoeba_trace(rng, opts);
    Trace eager = good;
    eager.push_back(send_ev(0, 6000));
    eager.push_back(send_ev(0, 6001));  // second send while first awaits
    rows.push_back({"Amoeba", "a process is blocked from sending while awaiting its own",
                    AmoebaProperty().holds(good), !AmoebaProperty().holds(eager)});
  }
  {
    opts.seq_base = 7000;
    const Trace good = gen_vsync_trace(rng, opts);
    Trace skewed = good;
    // Inject an extra data delivery inside one member's epoch.
    for (std::size_t i = 0; i < skewed.size(); ++i) {
      if (skewed[i].is_view_marker() && skewed[i].msg.seq == opts.seq_base + 2) {
        skewed.insert(skewed.begin() + static_cast<std::ptrdiff_t>(i),
                      deliver_ev(skewed[i].process, 0, 8000));
        break;
      }
    }
    rows.push_back({"Virtual Synchrony", "messages are delivered in common views",
                    VirtualSynchronyProperty().holds(good),
                    !VirtualSynchronyProperty().holds(skewed)});
  }

  std::printf("%-22s %-55s %-9s %-9s\n", "property", "informal meaning (Table 1)", "witness",
              "tamper");
  rule(100);
  bool all_ok = true;
  for (const auto& r : rows) {
    std::printf("%-22s %-55s %-9s %-9s\n", r.name, r.description,
                r.holds_on_witness ? "holds" : "FAILS", r.fails_on_tamper ? "caught" : "MISSED");
    all_ok = all_ok && r.holds_on_witness && r.fails_on_tamper;
  }
  rule(100);
  std::printf("catalogue self-check: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace msw::bench

int main() { return msw::bench::run(); }
