// E3 — Figure 2: message latency vs. number of active senders.
//
// Group of 10 members; a subgroup of k = 1..10 members each multicasts 50
// msg/s (Poisson). Series: sequencer-based total order, token-based total
// order, and the hybrid (switching protocol + hysteresis oracle), which
// should track the lower envelope.
//
// Paper reference (section 7): sequencer latency ~ two network hops at low
// load, rising steeply as the sequencer saturates; token latency roughly
// half a ring rotation, nearly flat; cross-over between 5 and 6 active
// senders.
#include <cstdio>

#include "bench_util.hpp"
#include "calibration.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"

namespace msw::bench {
namespace {

WorkloadResult run_one(const LayerFactory& factory, std::size_t senders) {
  Simulation sim(kSeed);
  Network net(sim.scheduler(), sim.fork_rng(), era_network());
  Group group(sim, net, kGroupSize, factory);
  group.start();
  return run_workload(sim, group, paper_workload(senders));
}

LayerFactory hybrid_factory() {
  HybridConfig cfg;
  cfg.sequencer = sequencer_config();
  cfg.token = token_config();
  cfg.sp = switch_config();
  cfg.oracle = [](NodeId) {
    return std::make_unique<HysteresisOracle>(3, 6, 1 * kSecond);
  };
  return make_hybrid_total_order_factory(cfg);
}

int run() {
  title("Figure 2 — message latency vs. number of active senders");
  note("group = 10 members, 50 msg/s per active sender (Poisson), 6 s steady state");
  note("series: sequencer / token / hybrid (SP + hysteresis oracle 3..6)");
  note("beyond the cross-over the saturated sequencer's queue grows without bound,");
  note("so its numbers depend on run length; only the shape is meaningful there");
  std::printf("\n");
  std::printf("%-8s %14s %14s %14s   %s\n", "senders", "sequencer(ms)", "token(ms)",
              "hybrid(ms)", "winner");
  rule();

  int crossover = -1;
  double prev_gap = 0;
  for (std::size_t k = 1; k <= kGroupSize; ++k) {
    const auto seq = run_one(make_sequencer_factory(sequencer_config()), k);
    const auto tok = run_one(make_token_factory(token_config()), k);
    const auto hyb = run_one(hybrid_factory(), k);
    const double s = seq.latency_ms.mean();
    const double t = tok.latency_ms.mean();
    const double h = hyb.latency_ms.mean();
    std::printf("%-8zu %14.2f %14.2f %14.2f   %s\n", k, s, t, h,
                s < t ? "sequencer" : "token");
    if (crossover < 0 && s > t) crossover = static_cast<int>(k);
    prev_gap = t - s;
    (void)prev_gap;
    if (seq.missing_deliveries + tok.missing_deliveries + hyb.missing_deliveries > 0) {
      std::printf("         (WARNING: missing deliveries: seq=%llu tok=%llu hyb=%llu)\n",
                  static_cast<unsigned long long>(seq.missing_deliveries),
                  static_cast<unsigned long long>(tok.missing_deliveries),
                  static_cast<unsigned long long>(hyb.missing_deliveries));
    }
  }
  rule();
  std::printf(
      "hybrid notes: at k=5 SP's control traffic adds load to the near-critical\n"
      "sequencer; at k>=9 the switch both initiates late (the control token is\n"
      "starved by the saturated sequencer's CPU) and then drains slowly — the\n"
      "paper's 'unexpected hitch': the overhead of switching depends on the\n"
      "latency of the protocol being switched away from (section 7).\n");
  if (crossover > 0) {
    std::printf("cross-over: between %d and %d active senders (paper: between 5 and 6)\n",
                crossover - 1, crossover);
  } else {
    std::printf("cross-over: NOT OBSERVED (paper: between 5 and 6)\n");
  }
  std::printf(
      "shape check: sequencer low & rising, token high & flat, hybrid tracks the\n"
      "lower envelope (paper section 7: 'a hybrid protocol formed by switching at\n"
      "the cross-over point would achieve the best of both worlds').\n");
  return 0;
}

}  // namespace
}  // namespace msw::bench

int main() { return msw::bench::run(); }
