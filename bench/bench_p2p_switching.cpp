// E11 — the point-to-point specialization (paper section 1: "our work can
// easily be specialized for point-to-point communication").
//
// The Figure 2 experiment transplanted to a two-node link: latency vs.
// offered rate for stop-and-wait (simple, one frame in flight, capped at
// 1/RTT) vs. go-back-N (pipelined), plus SP switching between them — the
// same cross-over-and-switch story on a different protocol family.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "calibration.hpp"
#include "proto/link_layers.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"

namespace msw::bench {
namespace {

struct LinkRun {
  double latency_ms;
  double retx_per_msg;  // retransmitted frames per application message
};

template <typename LayerT>
LinkRun run_one(double rate_per_sec, double loss) {
  Simulation sim(kSeed);
  NetConfig nc = era_network();
  nc.loss = loss;
  Network net(sim.scheduler(), sim.fork_rng(), nc);
  std::vector<LayerT*> links;
  Group link(sim, net, 2, [&links](NodeId, const std::vector<NodeId>&) {
    auto l = std::make_unique<LayerT>();
    links.push_back(l.get());
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(l));
    return layers;
  });
  link.start();
  WorkloadConfig cfg;
  cfg.senders = 1;
  cfg.rate_per_sender = rate_per_sec;
  cfg.duration = 4 * kSecond;
  cfg.warmup = kSecond;
  cfg.drain = 20 * kSecond;
  cfg.body_size = 64;
  cfg.poisson = true;
  const auto res = run_workload(sim, link, cfg);
  LinkRun out;
  out.latency_ms = res.latency_ms.mean();
  std::uint64_t retx = 0;
  for (auto* l : links) retx += l->stats().retransmissions;
  out.retx_per_msg = res.sent > 0 ? static_cast<double>(retx) / static_cast<double>(res.sent)
                                  : 0.0;
  return out;
}

int run() {
  title("Point-to-point specialization: latency vs. offered rate (2-node link)");
  note("RTT ~ 2.5 ms, so stop-and-wait saturates near 1/RTT ~ 400 msg/s");
  std::printf("\n%-12s %18s %14s\n", "rate(msg/s)", "stop-and-wait(ms)", "go-back-N(ms)");
  rule(50);
  const double rates[] = {50, 100, 200, 300, 400, 500, 700, 1000};
  for (double rate : rates) {
    const auto sw = run_one<StopAndWaitLayer>(rate, 0.0);
    const auto gbn = run_one<GoBackNLayer>(rate, 0.0);
    std::printf("%-12.0f %18.2f %14.2f\n", rate, sw.latency_ms, gbn.latency_ms);
  }
  rule(50);
  std::printf(
      "stop-and-wait latency explodes past ~1/RTT while go-back-N stays flat —\n"
      "the throughput half of the trade-off.\n");

  std::printf("\n%-12s %22s %18s\n", "loss", "stop-and-wait retx/msg", "go-back-N retx/msg");
  rule(56);
  for (double loss : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    const auto sw = run_one<StopAndWaitLayer>(100, loss);
    const auto gbn = run_one<GoBackNLayer>(100, loss);
    const std::string label = std::to_string(static_cast<int>(loss * 100)) + "%";
    std::printf("%-12s %22.3f %18.3f\n", label.c_str(), sw.retx_per_msg, gbn.retx_per_msg);
  }
  rule(56);
  std::printf(
      "the bandwidth half: under loss, go-back-N resends whole windows where\n"
      "stop-and-wait resends a single frame — the simple protocol wins on a\n"
      "clean-but-lossy or bandwidth-poor link. SP switches between them at run\n"
      "time with no loss or reorder (tests/test_link_layers.cpp), the paper's\n"
      "section-1 point-to-point specialization realized.\n");
  return 0;
}

}  // namespace
}  // namespace msw::bench

int main() { return msw::bench::run(); }
