#!/usr/bin/env python3
"""Guard: telemetry compiled in must not slow the multicast hot path.

Compares two google-benchmark JSON files — a default build (telemetry
compiled in, rings unarmed) and a -DMSW_TELEMETRY=OFF build — and fails
if BM_MulticastFanOut or BM_BatchedFanOut (the batched multicast hot
path) regresses by more than the allowed percentage (default 3,
DESIGN.md section 9's overhead budget). Metrics attach as
external views of counters the hot path already increments and tracer
emission is a single branch on a null ring, so the two builds should be
indistinguishable; a real gap means an instrument leaked into the
per-copy path.

Usage: check_telemetry_overhead.py ON.json OFF.json [max_regression_pct]
"""
import json
import sys


def mean_times(path):
    """run_name -> cpu_time (the mean aggregate, or the plain iteration
    entry when the run used a single repetition)."""
    with open(path) as f:
        raw = json.load(f)
    out = {}
    for b in raw["benchmarks"]:
        if b.get("aggregate_name") == "mean" or (
            b.get("run_type") == "iteration" and b["run_name"] not in out
        ):
            out[b["run_name"]] = b["cpu_time"]
    return out


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    on = mean_times(sys.argv[1])
    off = mean_times(sys.argv[2])
    limit = float(sys.argv[3]) if len(sys.argv) > 3 else 3.0

    names = [n for n in ("BM_MulticastFanOut/32", "BM_MulticastFanOut/8",
                         "BM_BatchedFanOut/32", "BM_BatchedFanOut/128")
             if n in on and n in off]
    if not names:
        sys.exit("no BM_MulticastFanOut/BM_BatchedFanOut results in both "
                 "files; wrong --benchmark_filter?")

    failed = []
    for n in names:
        pct = 100.0 * (on[n] / off[n] - 1.0)
        print(f"{n}: telemetry-on {on[n]:.1f} ns vs telemetry-off "
              f"{off[n]:.1f} ns -> {pct:+.2f}%")
        if pct > limit:
            failed.append(n)
    if failed:
        sys.exit(f"telemetry overhead exceeds {limit}% on: {', '.join(failed)}")
    print(f"ok: multicast hot path within {limit}% of the telemetry-off build")


if __name__ == "__main__":
    main()
