// E8 — micro-costs of the substrate (google-benchmark).
//
// Not a paper artifact: sanity-level numbers for the simulator and
// framework primitives, useful when re-calibrating (a simulated second
// should cost far less than a real one at these event rates).
#include <benchmark/benchmark.h>

#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "stack/group.hpp"
#include "stack/message.hpp"
#include "switch/hybrid.hpp"
#include "trace/generators.hpp"
#include "trace/properties.hpp"
#include "util/digest.hpp"

namespace msw {
namespace {

void BM_WriterReaderRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    Bytes buf;
    Writer w(buf);
    w.u32(1);
    w.u64(2);
    w.str("header");
    Reader r(buf);
    benchmark::DoNotOptimize(r.u32());
    benchmark::DoNotOptimize(r.u64());
    benchmark::DoNotOptimize(r.str());
  }
}
BENCHMARK(BM_WriterReaderRoundTrip);

void BM_MessageHeaderPushPop(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Message m = Message::group(Bytes(64, 'x'));
    for (std::size_t i = 0; i < depth; ++i) {
      m.push_header([&](Writer& w) {
        w.u8(static_cast<std::uint8_t>(i));
        w.u64(i);
      });
    }
    for (std::size_t i = 0; i < depth; ++i) {
      m.pop_header([](Reader& r) {
        r.u8();
        r.u64();
      });
    }
    benchmark::DoNotOptimize(m.data.data());
  }
}
BENCHMARK(BM_MessageHeaderPushPop)->Arg(1)->Arg(4)->Arg(8);

void BM_Mac(benchmark::State& state) {
  const Bytes body(static_cast<std::size_t>(state.range(0)), 'b');
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac(0x1234, 7, body));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Mac)->Arg(64)->Arg(1024);

void BM_StreamCrypt(benchmark::State& state) {
  Bytes body(static_cast<std::size_t>(state.range(0)), 'b');
  for (auto _ : state) {
    stream_crypt(0x1234, 7, body);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_StreamCrypt)->Arg(64)->Arg(1024);

void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler s;
    for (int i = 0; i < 1000; ++i) {
      s.at(i, [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.executed());
  }
}
BENCHMARK(BM_SchedulerChurn);

void BM_SchedulerDispatch(benchmark::State& state) {
  // Per-event cost of the hot loop in steady state: one scheduler reused
  // across batches, so slot and heap storage amortize to zero allocation.
  Scheduler s;
  std::uint64_t sink = 0;
  constexpr int kBatch = 1024;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      s.after(1, [&sink] { ++sink; });
    }
    s.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_SchedulerDispatch);

void BM_SchedulerCancelHeavy(benchmark::State& state) {
  // Schedule-then-cancel half the events: exercises id-based cancellation
  // on the hot path (slot generation check vs. map erase).
  Scheduler s;
  std::uint64_t sink = 0;
  constexpr int kBatch = 1024;
  std::vector<EventId> ids;
  ids.reserve(kBatch);
  for (auto _ : state) {
    ids.clear();
    for (int i = 0; i < kBatch; ++i) {
      ids.push_back(s.after(1 + (i % 7), [&sink] { ++sink; }));
    }
    for (int i = 0; i < kBatch; i += 2) s.cancel(ids[static_cast<std::size_t>(i)]);
    s.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_SchedulerCancelHeavy);

void BM_MulticastFanOut(benchmark::State& state) {
  // N-destination multicast of a 4 KiB body over an ideal network: the
  // fan-out loop is the unit under test. A shared payload makes this N
  // refcount bumps; a deep-copying data plane pays N x 4 KiB per send.
  const int n = static_cast<int>(state.range(0));
  Simulation sim(1);
  NetConfig cfg;
  cfg.base_latency = 1 * kMicrosecond;
  cfg.jitter = 0;
  cfg.loss = 0.0;
  cfg.cpu_send = 0;
  cfg.cpu_recv = 0;
  cfg.bandwidth_bps = 0;
  Network net(sim.scheduler(), sim.fork_rng(), cfg);
  std::vector<NodeId> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(net.add_node());
  std::uint64_t delivered = 0;
  for (const NodeId id : nodes) {
    net.set_handler(id, [&delivered](Packet p) { delivered += p.data.size(); });
  }
  const Bytes body(4096, 'x');
  for (auto _ : state) {
    net.multicast(nodes[0], nodes, body);
    sim.run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_MulticastFanOut)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_BatchedFanOut(benchmark::State& state) {
  // The batched counterpart: one multicast_run of a 16-message run to N
  // destinations. One scatter event per destination per tick and one
  // shared payload vector replace 16 x N per-copy events; items processed
  // counts every copy so per-copy ns is directly comparable to
  // BM_MulticastFanOut.
  constexpr int kRun = 16;
  const int n = static_cast<int>(state.range(0));
  Simulation sim(1);
  NetConfig cfg;
  cfg.base_latency = 1 * kMicrosecond;
  cfg.jitter = 0;
  cfg.loss = 0.0;
  cfg.cpu_send = 0;
  cfg.cpu_recv = 0;
  cfg.bandwidth_bps = 0;
  Network net(sim.scheduler(), sim.fork_rng(), cfg);
  std::vector<NodeId> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(net.add_node());
  std::uint64_t delivered = 0;
  for (const NodeId id : nodes) {
    net.set_run_handler(id, [&delivered](NodeId, std::span<const Payload> run) {
      for (const Payload& p : run) delivered += p.size();
    });
  }
  std::vector<Payload> run;
  for (int k = 0; k < kRun; ++k) run.emplace_back(Bytes(4096, 'x'));
  for (auto _ : state) {
    net.multicast_run(nodes[0], nodes, run);
    sim.run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * kRun);
}
BENCHMARK(BM_BatchedFanOut)->Arg(32)->Arg(128)->Arg(512);

void BM_BatchedGroupSend(benchmark::State& state) {
  // End-to-end batched delivery: a 16-message send_batch through a
  // fifo+reliable stack at every member of an N-member group, ideal cost
  // model. Measures the whole amortized path — one layer dispatch per
  // layer, flat header encodes, one scatter, coalesced delivery events.
  constexpr std::size_t kRun = 16;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Simulation sim(1);
  NetConfig cfg;
  cfg.base_latency = 1 * kMicrosecond;
  cfg.jitter = 0;
  cfg.loss = 0.0;
  cfg.cpu_send = 0;
  cfg.cpu_recv = 0;
  cfg.bandwidth_bps = 0;
  Network net(sim.scheduler(), sim.fork_rng(), cfg);
  Group group(sim, net, n, make_reliable_fifo_factory());
  group.start();
  sim.run_for(kSecond);
  for (auto _ : state) {
    std::vector<Bytes> bodies;
    bodies.reserve(kRun);
    for (std::size_t k = 0; k < kRun; ++k) bodies.emplace_back(256, 'b');
    group.send_batch(0, std::move(bodies));
    // run_for, not run(): the reliable layer's periodic timers reschedule
    // themselves forever. 1 ms covers delivery at 1 us hop latency.
    sim.run_for(kMillisecond);
  }
  benchmark::DoNotOptimize(group.total_delivered());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * kRun));
}
BENCHMARK(BM_BatchedGroupSend)->Arg(8)->Arg(32);

void BM_SimulatedSecondSequencer(benchmark::State& state) {
  // Cost of simulating 1 s of a 10-member sequencer group at 250 msg/s.
  for (auto _ : state) {
    Simulation sim(1);
    NetConfig nc;
    nc.cpu_send = 500;
    nc.cpu_recv = 500;
    Network net(sim.scheduler(), sim.fork_rng(), nc);
    Group group(sim, net, 10, make_sequencer_factory());
    group.start();
    for (int k = 0; k < 250; ++k) {
      sim.scheduler().at(k * 4 * kMillisecond,
                         [&group, k] { group.send(static_cast<std::size_t>(k % 5), Bytes(64)); });
    }
    sim.run_until(kSecond);
    benchmark::DoNotOptimize(group.total_delivered());
  }
}
BENCHMARK(BM_SimulatedSecondSequencer)->Unit(benchmark::kMillisecond);

void BM_TotalOrderPropertyCheck(benchmark::State& state) {
  Rng rng(3);
  GenOptions opts;
  opts.n_procs = 6;
  opts.n_msgs = static_cast<std::uint32_t>(state.range(0));
  const Trace tr = gen_total_order_trace(rng, opts);
  TotalOrderProperty prop;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop.holds(tr));
  }
}
BENCHMARK(BM_TotalOrderPropertyCheck)->Arg(8)->Arg(32);

void BM_CorpusGeneration(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(9);
    benchmark::DoNotOptimize(standard_corpus(rng, 4, 4));
  }
}
BENCHMARK(BM_CorpusGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace msw

BENCHMARK_MAIN();
