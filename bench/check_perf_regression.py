#!/usr/bin/env python3
"""Perf-smoke guard: fail when a hot-path benchmark regresses against the
checked-in baseline.

Compares a fresh google-benchmark JSON run against bench/baseline_seed.json
and exits non-zero if any benchmark present in BOTH files is slower by more
than the allowed percentage (default 15). Benchmarks only in the fresh run
(newly added ones) are reported informationally and not gated until the
baseline is refreshed.

The baseline is a capture from the pre-batching tree; refresh it (rerun
bench/run_micro.sh's filter on the new tree and commit the JSON) whenever
the benchmark machine changes — absolute nanoseconds do not transfer
between hosts, so a stale baseline from different hardware makes this
check meaningless.

Usage: check_perf_regression.py AFTER.json [BASELINE.json] [max_regression_pct]
"""
import json
import os
import sys


def mean_times(path):
    """run_name -> cpu_time mean aggregate (or the plain iteration entry
    when the run used a single repetition)."""
    with open(path) as f:
        raw = json.load(f)
    out = {}
    for b in raw["benchmarks"]:
        if b.get("aggregate_name") == "mean" or (
            b.get("run_type") == "iteration" and b["run_name"] not in out
        ):
            out[b["run_name"]] = b["cpu_time"]
    return out


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    after = mean_times(sys.argv[1])
    baseline_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(__file__), "baseline_seed.json")
    )
    before = mean_times(baseline_path)
    limit = float(sys.argv[3]) if len(sys.argv) > 3 else 15.0

    gated = sorted(set(after) & set(before))
    if not gated:
        sys.exit("no benchmarks shared between run and baseline; "
                 "wrong --benchmark_filter?")

    failed = []
    for n in gated:
        pct = 100.0 * (after[n] / before[n] - 1.0)
        print(f"{n}: baseline {before[n]:.1f} ns vs current {after[n]:.1f} ns "
              f"-> {pct:+.2f}%")
        if pct > limit:
            failed.append(f"{n} ({pct:+.1f}%)")
    for n in sorted(set(after) - set(before)):
        print(f"{n}: {after[n]:.1f} ns (new benchmark, not in baseline; not gated)")

    if failed:
        sys.exit(f"perf regression exceeds {limit}% on: {', '.join(failed)}")
    print(f"ok: all {len(gated)} gated benchmarks within {limit}% of baseline")


if __name__ == "__main__":
    main()
