// E5 — section 7: oracle aggressiveness and oscillation.
//
// The paper: "If switching too aggressively, the resulting protocol starts
// oscillating. If we make our protocol less aggressive (by adding a
// hysteresis), we ran into an unexpected hitch [switch cost depends on the
// latency of the protocol being switched away from]."
//
// Workload: the active-sender count flip-flops around the cross-over
// (between 4 and 6 senders every 400 ms) for 20 s. Compared oracles:
//   - static sequencer / static token (no switching),
//   - aggressive single threshold at 5,
//   - hysteresis (switch up at >=6, down at <=3, >=1 s dwell).
// Reported: completed switches (oscillation count) and mean latency.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "calibration.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"

namespace msw::bench {
namespace {

struct AblationRow {
  const char* name;
  std::uint64_t switches;
  double mean_ms;
  double p99_ms;
  std::uint64_t missing;
};

AblationRow run_oracle(const char* name, OracleFactory oracle, int fixed_protocol = -1) {
  Simulation sim(kSeed);
  Network net(sim.scheduler(), sim.fork_rng(), era_network());

  LayerFactory factory;
  if (fixed_protocol == 0) {
    factory = make_sequencer_factory(sequencer_config());
  } else if (fixed_protocol == 1) {
    factory = make_token_factory(token_config());
  } else {
    HybridConfig cfg;
    cfg.sequencer = sequencer_config();
    cfg.token = token_config();
    cfg.sp = switch_config();
    cfg.oracle = std::move(oracle);
    factory = make_hybrid_total_order_factory(cfg);
  }
  Group group(sim, net, kGroupSize, factory);
  group.start();

  // Fluctuating load: phases of 2 s alternating between 4 and 6 active
  // senders, 50 msg/s each (Poisson), 20 s total — the load keeps crossing
  // the protocols' cross-over point.
  Rng rng = sim.fork_rng();
  const Duration phase_len = 2 * kSecond;
  const Time end_sends = 20 * kSecond;
  const auto interval = static_cast<Duration>(1e6 / 50.0);
  for (std::size_t s = 0; s < 6; ++s) {
    Time t = static_cast<Duration>(rng.below(static_cast<std::uint64_t>(interval)));
    while (t < end_sends) {
      const bool high_phase = (t / phase_len) % 2 == 1;
      const std::size_t active = high_phase ? 6 : 4;
      if (s < active) {
        sim.scheduler().at(t, [&group, s] { group.send(s, Bytes(64, 'o')); });
      }
      t += std::max<Duration>(1, static_cast<Duration>(
                                     rng.exponential(static_cast<double>(interval))));
    }
  }
  sim.run_until(end_sends + 10 * kSecond);

  AblationRow row{};
  row.name = name;
  if (fixed_protocol < 0) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      row.switches = std::max(row.switches,
                              switch_layer_of(group.stack(i)).stats().switches_completed);
    }
  }
  const auto tl = trace_latency(group.trace(), 1 * kSecond, end_sends, group.size());
  row.mean_ms = tl.latency_ms.mean();
  row.p99_ms = tl.latency_ms.percentile(99);
  row.missing = tl.missing_deliveries;
  return row;
}

int run() {
  title("Section 7 — oracle ablation: oscillation vs. hysteresis");
  note("load flip-flops 4 <-> 6 active senders every 2 s for 20 s (cross-over sits at 5..6)");
  std::printf("\n%-26s %10s %12s %12s %10s\n", "oracle", "switches", "mean(ms)", "p99(ms)",
              "missing");
  rule(76);

  const auto rows = {
      run_oracle("static sequencer", {}, 0),
      run_oracle("static token", {}, 1),
      run_oracle("aggressive threshold(5)",
                 [](NodeId) { return std::make_unique<ThresholdOracle>(5); }),
      run_oracle("hysteresis(3,6,1s)",
                 [](NodeId) {
                   return std::make_unique<HysteresisOracle>(3, 6, 1 * kSecond);
                 }),
  };
  std::uint64_t aggressive_switches = 0, hysteresis_switches = 0;
  for (const auto& r : rows) {
    std::printf("%-26s %10llu %12.2f %12.2f %10llu\n", r.name,
                static_cast<unsigned long long>(r.switches), r.mean_ms, r.p99_ms,
                static_cast<unsigned long long>(r.missing));
    if (std::string(r.name).rfind("aggressive", 0) == 0) aggressive_switches = r.switches;
    if (std::string(r.name).rfind("hysteresis", 0) == 0) hysteresis_switches = r.switches;
  }
  rule(76);
  std::printf(
      "oscillation check: aggressive oracle switched %llu times vs %llu with\n"
      "hysteresis (paper: 'if switching too aggressively, the resulting protocol\n"
      "starts oscillating').\n",
      static_cast<unsigned long long>(aggressive_switches),
      static_cast<unsigned long long>(hysteresis_switches));
  return 0;
}

}  // namespace
}  // namespace msw::bench

int main() { return msw::bench::run(); }
