// E5 — section 7: oracle ablation, oscillation, and the adaptive policy.
//
// The paper: "If switching too aggressively, the resulting protocol starts
// oscillating. If we make our protocol less aggressive (by adding a
// hysteresis), we ran into an unexpected hitch [switch cost depends on the
// latency of the protocol being switched away from]."
//
// Arms compared:
//   - static sequencer / static token (no switching),
//   - aggressive single threshold at 5 (the oscillation failure mode),
//   - hysteresis (up at >=6, down at <=3, 1 s dwell): the paper's fix,
//     hand-tuned for exactly this workload family,
//   - adaptive: the PolicyOracle — telemetry-scored protocol ranking with
//     auto-tuned dwell, no workload-specific knobs.
//
// Workloads:
//   - steady k in {2, 4, 6, 8} active senders at 50 msg/s (the Figure 2
//     sweep; cross-over sits at 5..6),
//   - flip-flop: 4 <-> 6 senders every 2 s for 20 s,
//   - flip-flop+faults: same load under 5% loss, jitter bursts,
//     dup/reorder, and a crash/restart — the oscillation-bait arm.
//
// `--json F` writes every row plus the pass/fail checks as BENCH JSON for
// CI (exit code 1 when a check fails): the adaptive arm must match the
// hand-tuned hysteresis on mean delivery latency (within 10%) on every
// workload they share, and must hold its switch count under the
// no-oscillation ceiling on the injected-fault arm.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "calibration.hpp"
#include "net/fault.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"

namespace msw::bench {
namespace {

struct WorkloadSpec {
  const char* name;
  /// 0 = flip-flop 4 <-> 6; otherwise the steady sender count.
  std::size_t steady_senders = 0;
  bool faults = false;
  Time end_sends = 20 * kSecond;
  Time measure_from = 4 * kSecond;
};

struct AblationRow {
  const char* workload;
  const char* oracle;
  std::uint64_t switches;
  double mean_ms;
  double p99_ms;
  std::uint64_t missing;
};

/// The oscillation-bait schedule: jitter bursts through both flip-flop
/// phases, continuous dup/reorder, and a crash/restart of a non-sequencer
/// member mid-run.
FaultSchedule fault_schedule() {
  FaultSchedule s;
  s.dup_prob = 0.02;
  s.reorder_prob = 0.05;
  const auto burst = [&s](Time at) {
    FaultEvent e;
    e.kind = FaultEvent::Kind::kJitterBurst;
    e.at = at;
    e.duration = 1 * kSecond;
    e.magnitude = 5 * kMillisecond;
    s.events.push_back(e);
  };
  burst(3 * kSecond);
  burst(9 * kSecond);
  burst(15 * kSecond);
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.at = 8 * kSecond;
  crash.a = 7;
  s.events.push_back(crash);
  FaultEvent restart = crash;
  restart.kind = FaultEvent::Kind::kRestart;
  restart.at = 8500 * kMillisecond;
  s.events.push_back(restart);
  return s;
}

AblationRow run_arm(const WorkloadSpec& w, const char* name, OracleFactory oracle,
                    int fixed_protocol = -1) {
  Simulation sim(kSeed);
  NetConfig net_cfg = era_network();
  if (w.faults) net_cfg.loss = 0.05;
  Network net(sim.scheduler(), sim.fork_rng(), net_cfg);

  LayerFactory factory;
  if (fixed_protocol == 0) {
    factory = make_sequencer_factory(sequencer_config());
  } else if (fixed_protocol == 1) {
    factory = make_token_factory(token_config());
  } else {
    HybridConfig cfg;
    cfg.sequencer = sequencer_config();
    cfg.token = token_config();
    cfg.sp = switch_config();
    cfg.oracle = std::move(oracle);
    factory = make_hybrid_total_order_factory(cfg);
  }
  Group group(sim, net, kGroupSize, factory);

  FaultPlane plane(net, sim.fork_rng(), w.faults ? fault_schedule() : FaultSchedule{});
  if (w.faults) plane.install();
  group.start();

  // Poisson sends at 50 msg/s per active sender. Flip-flop alternates the
  // active set between 4 and 6 every 2 s; steady keeps it fixed.
  Rng rng = sim.fork_rng();
  const Duration phase_len = 2 * kSecond;
  const auto interval = static_cast<Duration>(1e6 / 50.0);
  const std::size_t max_senders = w.steady_senders ? w.steady_senders : 6;
  for (std::size_t s = 0; s < max_senders; ++s) {
    Time t = static_cast<Duration>(rng.below(static_cast<std::uint64_t>(interval)));
    while (t < w.end_sends) {
      std::size_t active = w.steady_senders;
      if (active == 0) active = (t / phase_len) % 2 == 1 ? 6 : 4;
      if (s < active) {
        sim.scheduler().at(t, [&group, s] { group.send(s, Bytes(64, 'o')); });
      }
      t += std::max<Duration>(1, static_cast<Duration>(
                                     rng.exponential(static_cast<double>(interval))));
    }
  }
  sim.run_until(w.end_sends + 10 * kSecond);

  AblationRow row{};
  row.workload = w.name;
  row.oracle = name;
  if (fixed_protocol < 0) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      row.switches = std::max(row.switches,
                              switch_layer_of(group.stack(i)).stats().switches_completed);
    }
  }
  const auto tl = trace_latency(group.trace(), w.measure_from, w.end_sends, group.size());
  row.mean_ms = tl.latency_ms.mean();
  row.p99_ms = tl.latency_ms.percentile(99);
  row.missing = tl.missing_deliveries;
  return row;
}

OracleFactory threshold_oracle() {
  return [](NodeId) { return std::make_unique<ThresholdOracle>(5); };
}
OracleFactory hysteresis_oracle() {
  return [](NodeId) { return std::make_unique<HysteresisOracle>(3, 6, 1 * kSecond); };
}
OracleFactory adaptive_oracle() { return make_policy_oracle_factory(); }

struct Checks {
  double latency_ratio_ceiling = 1.10;
  std::uint64_t switch_ceiling_faults = 6;
  double worst_latency_ratio = 0.0;
  const char* worst_latency_workload = "-";
  std::uint64_t adaptive_fault_switches = 0;
  std::uint64_t threshold_fault_switches = 0;
  bool pass = true;
};

Checks evaluate(const std::vector<AblationRow>& rows) {
  Checks c;
  for (const AblationRow& a : rows) {
    if (std::strcmp(a.oracle, "adaptive") != 0) continue;
    if (std::strcmp(a.workload, "flip-flop+faults") == 0) {
      c.adaptive_fault_switches = a.switches;
      if (a.switches > c.switch_ceiling_faults) c.pass = false;
    }
    for (const AblationRow& h : rows) {
      if (std::strcmp(h.oracle, "hysteresis(3,6,1s)") != 0 ||
          std::strcmp(h.workload, a.workload) != 0) {
        continue;
      }
      const double ratio = h.mean_ms > 0 ? a.mean_ms / h.mean_ms : 1.0;
      if (ratio > c.worst_latency_ratio) {
        c.worst_latency_ratio = ratio;
        c.worst_latency_workload = a.workload;
      }
      if (ratio > c.latency_ratio_ceiling) c.pass = false;
    }
  }
  for (const AblationRow& r : rows) {
    if (std::strcmp(r.oracle, "threshold(5)") == 0 &&
        std::strcmp(r.workload, "flip-flop+faults") == 0) {
      c.threshold_fault_switches = r.switches;
    }
  }
  return c;
}

void write_json(const std::string& path, const std::vector<AblationRow>& rows,
                const Checks& c) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os << "{\n  \"bench\": \"oracle_ablation\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AblationRow& r = rows[i];
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "    {\"workload\": \"%s\", \"oracle\": \"%s\", \"switches\": %llu, "
                  "\"mean_ms\": %.3f, \"p99_ms\": %.3f, \"missing\": %llu}%s\n",
                  r.workload, r.oracle, static_cast<unsigned long long>(r.switches),
                  r.mean_ms, r.p99_ms, static_cast<unsigned long long>(r.missing),
                  i + 1 < rows.size() ? "," : "");
    os << buf;
  }
  char buf[448];
  std::snprintf(buf, sizeof buf,
                "  ],\n  \"checks\": {\n"
                "    \"latency_ratio_ceiling\": %.2f,\n"
                "    \"worst_latency_ratio\": %.4f,\n"
                "    \"worst_latency_workload\": \"%s\",\n"
                "    \"switch_ceiling_faults\": %llu,\n"
                "    \"adaptive_fault_switches\": %llu,\n"
                "    \"threshold_fault_switches\": %llu,\n"
                "    \"pass\": %s\n  }\n}\n",
                c.latency_ratio_ceiling, c.worst_latency_ratio, c.worst_latency_workload,
                static_cast<unsigned long long>(c.switch_ceiling_faults),
                static_cast<unsigned long long>(c.adaptive_fault_switches),
                static_cast<unsigned long long>(c.threshold_fault_switches),
                c.pass ? "true" : "false");
  os << buf;
  std::fprintf(stderr, "bench json written to %s\n", path.c_str());
}

int run(const std::string& json_out) {
  title("Section 7 — oracle ablation: static vs threshold vs hysteresis vs adaptive");
  note("steady sweep k in {2,4,6,8} senders x 50 msg/s; flip-flop 4 <-> 6 every 2 s;");
  note("fault arm adds 5% loss, jitter bursts, dup/reorder, and a crash/restart");
  std::printf("\n%-18s %-22s %10s %12s %12s %10s\n", "workload", "oracle", "switches",
              "mean(ms)", "p99(ms)", "missing");
  rule(90);

  std::vector<AblationRow> rows;
  const auto add = [&rows](AblationRow r) {
    std::printf("%-18s %-22s %10llu %12.2f %12.2f %10llu\n", r.workload, r.oracle,
                static_cast<unsigned long long>(r.switches), r.mean_ms, r.p99_ms,
                static_cast<unsigned long long>(r.missing));
    rows.push_back(r);
  };

  for (const std::size_t k : {2, 4, 6, 8}) {
    WorkloadSpec w;
    static char names[4][16];
    std::snprintf(names[k / 2 - 1], sizeof names[0], "steady-%zu", k);
    w.name = names[k / 2 - 1];
    w.steady_senders = k;
    add(run_arm(w, "static sequencer", {}, 0));
    add(run_arm(w, "static token", {}, 1));
    add(run_arm(w, "hysteresis(3,6,1s)", hysteresis_oracle()));
    add(run_arm(w, "adaptive", adaptive_oracle()));
  }
  {
    WorkloadSpec w;
    w.name = "flip-flop";
    add(run_arm(w, "static sequencer", {}, 0));
    add(run_arm(w, "static token", {}, 1));
    add(run_arm(w, "threshold(5)", threshold_oracle()));
    add(run_arm(w, "hysteresis(3,6,1s)", hysteresis_oracle()));
    add(run_arm(w, "adaptive", adaptive_oracle()));
  }
  {
    WorkloadSpec w;
    w.name = "flip-flop+faults";
    w.faults = true;
    add(run_arm(w, "threshold(5)", threshold_oracle()));
    add(run_arm(w, "hysteresis(3,6,1s)", hysteresis_oracle()));
    add(run_arm(w, "adaptive", adaptive_oracle()));
  }
  rule(90);

  const Checks c = evaluate(rows);
  std::printf(
      "adaptive vs hand-tuned hysteresis: worst mean-latency ratio %.3f (ceiling %.2f,\n"
      "on %s); fault-arm switches: adaptive %llu (ceiling %llu) vs threshold %llu.\n"
      "checks: %s\n",
      c.worst_latency_ratio, c.latency_ratio_ceiling, c.worst_latency_workload,
      static_cast<unsigned long long>(c.adaptive_fault_switches),
      static_cast<unsigned long long>(c.switch_ceiling_faults),
      static_cast<unsigned long long>(c.threshold_fault_switches), c.pass ? "PASS" : "FAIL");
  if (!json_out.empty()) write_json(json_out, rows, c);
  return c.pass ? 0 : 1;
}

}  // namespace
}  // namespace msw::bench

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_out = argv[++i];
  }
  return msw::bench::run(json_out);
}
