#!/usr/bin/env python3
"""Guard: rt observability instrumentation must not slow the data path.

Compares BENCH_rt.json files from a default build (MSW_RT_STATS=ON: loop
health probes, latency stamping, seqlock publication armed) and a
-DMSW_RT_STATS=OFF build, and fails if msgs_per_sec_per_core drops by more
than the allowed percentage (default 3, DESIGN.md section 14's budget) at
any group size. The OFF build keeps the whole stats plane — flags, the
publisher thread, the flush timers — and compiles out only the hot-path
probes, so the comparison isolates exactly the per-message probe cost.

Two defenses against shared-runner noise, where single wall-clock runs
swing by +/-10% or more — far beyond the budget being enforced:

* The gated metric is msgs_per_cpu_sec (unique multicasts per CPU-second,
  user+sys over all threads), not wall throughput. Probe cost IS CPU
  cost, and CPU time is immune to the scheduler preemption that dominates
  wall variance. Older files without the field fall back to
  msgs_per_sec_per_core.
* Each side takes a comma-separated list of repetition files, recorded
  INTERLEAVED (on, off, on, off, ...): repetition i of each side ran
  back-to-back under near-identical machine conditions, so the ratio
  on[i]/off[i] cancels slow drift (frequency scaling, noisy neighbors).
  The gate is the median of those paired ratios per group size — robust
  to an outlier run on either side, which a best-of or mean-of
  comparison is not.

Usage: check_rt_stats_overhead.py ON1.json[,ON2.json...] \
                                  OFF1.json[,OFF2.json...] [max_pct]
(The two lists must pair up: same length, matching run order.)
"""
import json
import statistics
import sys


def rates(path):
    """n -> msgs_per_cpu_sec (fallback: msgs_per_sec_per_core) per file."""
    with open(path) as f:
        raw = json.load(f)
    if raw.get("bench") != "rt_throughput":
        sys.exit(f"{path}: not a bench_rt_throughput JSON")
    return {row["n"]: row.get("msgs_per_cpu_sec") or row["msgs_per_sec_per_core"]
            for row in raw["rows"]}


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    on_reps = [rates(p) for p in sys.argv[1].split(",")]
    off_reps = [rates(p) for p in sys.argv[2].split(",")]
    limit = float(sys.argv[3]) if len(sys.argv) > 3 else 3.0
    if len(on_reps) != len(off_reps):
        sys.exit(f"unpaired repetitions: {len(on_reps)} ON vs {len(off_reps)} OFF")

    common = sorted(set().union(*on_reps) & set().union(*off_reps))
    if not common:
        sys.exit("no common group sizes between the ON and OFF files")

    failed = []
    for n in common:
        ratios = [on[n] / off[n]
                  for on, off in zip(on_reps, off_reps)
                  if n in on and n in off and off[n] > 0]
        if not ratios:
            continue
        slowdown = 100.0 * (1.0 - statistics.median(ratios))
        print(f"n={n}: paired on/off ratios "
              f"{[f'{r:.3f}' for r in ratios]} -> {slowdown:+.2f}% slowdown")
        if slowdown > limit:
            failed.append(str(n))
    if failed:
        sys.exit(f"rt stats overhead exceeds {limit}% at n: {', '.join(failed)}")
    print(f"ok: instrumented rt data path within {limit}% of the stats-off build")


if __name__ == "__main__":
    main()
