// E6 — Figure 1: SWITCH composed with a protocol must still meet the
// protocol's specification — for properties in the six-meta-property
// class, and demonstrably NOT for properties outside it.
//
// Live protocol runs with repeated switches under traffic, across many
// seeds; properties are checked on the application-boundary traces:
//   - Total Order / Reliability / No Replay: in (or preserved alongside)
//     the switch-safe class — must hold on every run;
//   - Amoeba: not Delayable/Send Enabled — a cooperative application that
//     gates on the ACTIVE sub-protocol's readiness stays property-correct
//     without switches but is betrayed by a switch (the new protocol
//     instance reports ready while the old one still owes a delivery).
#include <cstdio>

#include "bench_util.hpp"
#include "calibration.hpp"
#include "proto/amoeba_layer.hpp"
#include "proto/fifo_layer.hpp"
#include "proto/reliable_layer.hpp"
#include "stack/group.hpp"
#include "switch/hybrid.hpp"
#include "trace/properties.hpp"

namespace msw::bench {
namespace {

constexpr std::size_t kRuns = 12;

struct PreservationCounts {
  int total_order_ok = 0;
  int reliability_ok = 0;
  int no_replay_ok = 0;
  int runs = 0;
};

PreservationCounts switch_safe_class_runs() {
  PreservationCounts counts;
  for (std::size_t seed = 1; seed <= kRuns; ++seed) {
    Simulation sim(seed);
    Network net(sim.scheduler(), sim.fork_rng(), era_network());
    HybridConfig cfg;
    cfg.sequencer = sequencer_config();
    cfg.token = token_config();
    Group group(sim, net, 6, make_hybrid_total_order_factory(cfg));
    group.start();

    Rng rng = sim.fork_rng();
    int counter = 0;
    for (int k = 0; k < 120; ++k) {
      const std::size_t sender = rng.index(6);
      sim.scheduler().at(k * 8 * kMillisecond, [&group, sender, counter] {
        group.send(sender, to_bytes("m" + std::to_string(counter)));
      });
      ++counter;
    }
    // Two switches mid-traffic (sequencer -> token -> sequencer).
    sim.scheduler().at(200 * kMillisecond,
                       [&group] { switch_layer_of(group.stack(2)).request_switch(); });
    sim.scheduler().at(600 * kMillisecond,
                       [&group] { switch_layer_of(group.stack(4)).request_switch(); });
    sim.run_until(8 * kSecond);

    ++counts.runs;
    std::vector<std::uint32_t> ids;
    for (std::size_t i = 0; i < group.size(); ++i) ids.push_back(group.node(i).v);
    if (TotalOrderProperty().holds(group.trace())) ++counts.total_order_ok;
    if (ReliabilityProperty(ids).holds(group.trace())) ++counts.reliability_ok;
    if (NoReplayProperty().holds(group.trace())) ++counts.no_replay_ok;
  }
  return counts;
}

/// Cooperative Amoeba application over SP: sends only when the ACTIVE
/// sub-protocol's Amoeba layer reports ready. Returns whether the final
/// app trace satisfied the Amoeba property.
bool amoeba_run(bool with_switch, std::uint64_t seed) {
  Simulation sim(seed);
  Network net(sim.scheduler(), sim.fork_rng(), era_network());
  const auto amoeba_proto = [](NodeId, const std::vector<NodeId>&) {
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::make_unique<AmoebaLayer>());
    layers.push_back(std::make_unique<FifoLayer>());
    layers.push_back(std::make_unique<ReliableLayer>());
    return layers;
  };
  Group group(sim, net, 4, make_switch_factory(amoeba_proto, amoeba_proto));
  group.start();

  auto& sp = switch_layer_of(group.stack(1));
  int remaining = 30;
  std::function<void()> pump = [&] {
    // The transparent question "may I send now?" goes to whichever
    // protocol would carry the next send. Mid-switch that is the NEW
    // instance — which is ready even while the old one still owes this
    // process its own previous message. That is exactly how SP loses the
    // Amoeba property.
    const int carrier = static_cast<int>(sp.epoch_of_next_send() % 2);
    auto& active = static_cast<AmoebaLayer&>(sp.sub_layer(carrier, 0));
    if (remaining > 0 && active.ready()) {
      group.send(1, to_bytes("a" + std::to_string(remaining)));
      --remaining;
    }
    if (remaining > 0) sim.scheduler().after(2 * kMillisecond, pump);
  };
  sim.scheduler().after(kMillisecond, pump);
  if (with_switch) {
    // Switch repeatedly while the app is pumping.
    for (int s = 0; s < 4; ++s) {
      sim.scheduler().at((30 + s * 40) * kMillisecond,
                         [&group] { switch_layer_of(group.stack(0)).request_switch(); });
    }
  }
  sim.run_until(20 * kSecond);
  return AmoebaProperty().holds(group.trace());
}

int run() {
  title("Figure 1 — the composition SWITCH(SPEC, SPEC) still meets SPEC");

  const auto counts = switch_safe_class_runs();
  std::printf("switch-safe class, %d runs with 2 mid-traffic switches each:\n", counts.runs);
  std::printf("  %-16s held on %2d/%2d runs\n", "Total Order", counts.total_order_ok,
              counts.runs);
  std::printf("  %-16s held on %2d/%2d runs\n", "Reliability", counts.reliability_ok,
              counts.runs);
  std::printf("  %-16s held on %2d/%2d runs\n", "No Replay", counts.no_replay_ok, counts.runs);

  std::printf("\nAmoeba (outside the class: not Delayable / not Send Enabled):\n");
  int held_without = 0, held_with = 0;
  constexpr int kAmoebaRuns = 8;
  for (std::uint64_t s = 1; s <= kAmoebaRuns; ++s) {
    if (amoeba_run(false, s)) ++held_without;
    if (amoeba_run(true, s)) ++held_with;
  }
  std::printf("  without switches: held on %d/%d runs (protocol enforces it)\n", held_without,
              kAmoebaRuns);
  std::printf("  with switches:    held on %d/%d runs (each instance is ready while the\n",
              held_with, kAmoebaRuns);
  std::printf("                    other still owes a delivery — the property is lost)\n");

  rule();
  const bool as_expected = counts.total_order_ok == counts.runs &&
                           counts.reliability_ok == counts.runs &&
                           counts.no_replay_ok == counts.runs &&
                           held_without == kAmoebaRuns && held_with < kAmoebaRuns;
  std::printf("verdict: %s (paper section 6.3: the six-meta-property class is preserved;\n"
              "Amoeba is not)\n",
              as_expected ? "matches the paper" : "UNEXPECTED — inspect above");
  return 0;
}

}  // namespace
}  // namespace msw::bench

int main() { return msw::bench::run(); }
