// Calibration of the simulated testbed to the paper's environment
// (section 7: ten SparcStation-20s running Solaris on a 10 Mbit Ethernet).
//
// These constants are the single source of truth for every benchmark;
// EXPERIMENTS.md documents how they were chosen and how sensitive each
// result is to them. The shape-level targets:
//   - sequencer latency at 1 sender ~ 2 network hops (paper: "basically
//     twice the network latency"),
//   - token latency roughly flat near half a ring rotation,
//   - crossover between 5 and 6 active senders at 50 msg/s each,
//   - switch overhead near the crossover of a few tens of ms (paper: 31 ms).
#pragma once

#include "net/network.hpp"
#include "proto/sequencer_layer.hpp"
#include "proto/token_layer.hpp"
#include "switch/switch_layer.hpp"
#include "harness/workload.hpp"

namespace msw::bench {

/// The 1990s LAN: 1 ms one-way latency, 10 Mbit/s shared wire, and a
/// 0.25 ms kernel cost per packet sent or received.
inline NetConfig era_network() {
  NetConfig cfg;
  cfg.base_latency = 1 * kMillisecond;
  cfg.jitter = 100;
  cfg.loopback_latency = 20;
  cfg.cpu_send = 250;
  cfg.cpu_recv = 250;
  cfg.bandwidth_bps = 10'000'000;
  cfg.wire_overhead_bytes = 64;
  cfg.loss = 0.0;
  return cfg;
}

/// Sequencer: 2.45 ms of ordering work per message on top of the packet
/// costs — the serial bottleneck that bends Figure 2's rising curve.
inline SequencerConfig sequencer_config() {
  SequencerConfig cfg;
  cfg.order_cost = 2450;
  cfg.request_rto = 200 * kMillisecond;
  cfg.nack_interval = 50 * kMillisecond;
  return cfg;
}

/// Token: light per-visit bookkeeping; the ring paces itself off network
/// latency and packet costs.
inline TokenConfig token_config() {
  TokenConfig cfg;
  cfg.token_process_cost = 300;
  return cfg;
}

inline SwitchConfig switch_config() {
  SwitchConfig cfg;
  // A 500 ms activity window smooths the Poisson gaps in the per-sender
  // delivery stream, so the oracle sees a stable sender count.
  cfg.sender_window = 500 * kMillisecond;
  return cfg;
}

/// The paper's workload: k active senders at 50 msg/s each in a group of
/// ten; application traffic modelled as Poisson. The long warmup lets the
/// hybrid finish its initial oracle-driven switch before measurement
/// (Figure 2 plots steady-state latency per configuration).
inline WorkloadConfig paper_workload(std::size_t senders) {
  WorkloadConfig cfg;
  cfg.senders = senders;
  cfg.rate_per_sender = 50.0;
  cfg.duration = 12 * kSecond;
  cfg.warmup = 6 * kSecond;
  cfg.drain = 20 * kSecond;
  cfg.body_size = 64;
  cfg.poisson = true;
  return cfg;
}

inline constexpr std::size_t kGroupSize = 10;
inline constexpr std::uint64_t kSeed = 42;

}  // namespace msw::bench
